//! Cluster-to-cluster similarity linkage.

use mube_schema::AttrId;

use crate::similarity::AttrSimilarity;

/// Total-order maximum over similarity scores: deterministic even when a
/// buggy measure yields NaN (which sorts above every number under
/// [`f64::total_cmp`], so poison surfaces instead of being silently dropped
/// the way `f64::max` would).
pub(crate) fn total_max(a: f64, b: f64) -> f64 {
    if a.total_cmp(&b).is_lt() {
        b
    } else {
        a
    }
}

/// Total-order minimum over similarity scores; see [`total_max`].
pub(crate) fn total_min(a: f64, b: f64) -> f64 {
    if a.total_cmp(&b).is_gt() {
        b
    } else {
        a
    }
}

/// How the similarity between two clusters is derived from attribute-pair
/// similarities.
///
/// The paper defines cluster similarity as "the maximum similarity between
/// an attribute from the first cluster and an attribute from the second
/// cluster" — [`Linkage::Single`]. Single linkage is what lets GA
/// constraints bridge dissimilar attributes: a cluster containing the
/// dissimilar pair `{a, b}` still attracts attributes similar to *either*
/// seed. Complete and average linkage exist for the `ablation_linkage`
/// bench, which quantifies how much of the bridging effect is lost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Linkage {
    /// Maximum pair similarity (the paper's definition).
    #[default]
    Single,
    /// Minimum pair similarity.
    Complete,
    /// Mean pair similarity.
    Average,
}

impl Linkage {
    /// Similarity between two attribute groups under this linkage.
    ///
    /// Returns 0.0 if either group is empty.
    pub fn cluster_similarity(self, a: &[AttrId], b: &[AttrId], sim: &dyn AttrSimilarity) -> f64 {
        if a.is_empty() || b.is_empty() {
            return 0.0;
        }
        match self {
            Linkage::Single => {
                let mut best = 0.0f64;
                for &x in a {
                    for &y in b {
                        best = total_max(best, sim.similarity(x, y));
                    }
                }
                best
            }
            Linkage::Complete => {
                let mut worst = f64::INFINITY;
                for &x in a {
                    for &y in b {
                        worst = total_min(worst, sim.similarity(x, y));
                    }
                }
                worst
            }
            Linkage::Average => {
                let mut total = 0.0;
                for &x in a {
                    for &y in b {
                        total += sim.similarity(x, y);
                    }
                }
                total / (a.len() * b.len()) as f64
            }
        }
    }

    /// Short name for reports.
    pub fn name(self) -> &'static str {
        match self {
            Linkage::Single => "single",
            Linkage::Complete => "complete",
            Linkage::Average => "average",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mube_schema::SourceId;
    use std::collections::HashMap;

    struct TableSim(HashMap<(u32, u32), f64>);

    impl AttrSimilarity for TableSim {
        fn similarity(&self, a: AttrId, b: AttrId) -> f64 {
            let (x, y) = (a.source.0, b.source.0);
            let key = if x <= y { (x, y) } else { (y, x) };
            *self.0.get(&key).unwrap_or(&0.0)
        }
    }

    fn attr(s: u32) -> AttrId {
        AttrId::new(SourceId(s), 0)
    }

    fn table() -> TableSim {
        let mut t = HashMap::new();
        t.insert((0, 2), 0.9);
        t.insert((0, 3), 0.1);
        t.insert((1, 2), 0.5);
        t.insert((1, 3), 0.3);
        TableSim(t)
    }

    #[test]
    fn single_takes_max() {
        let s =
            Linkage::Single.cluster_similarity(&[attr(0), attr(1)], &[attr(2), attr(3)], &table());
        assert_eq!(s, 0.9);
    }

    #[test]
    fn complete_takes_min() {
        let s = Linkage::Complete.cluster_similarity(
            &[attr(0), attr(1)],
            &[attr(2), attr(3)],
            &table(),
        );
        assert_eq!(s, 0.1);
    }

    #[test]
    fn average_takes_mean() {
        let s =
            Linkage::Average.cluster_similarity(&[attr(0), attr(1)], &[attr(2), attr(3)], &table());
        assert!((s - 0.45).abs() < 1e-12);
    }

    #[test]
    fn empty_groups_are_zero() {
        assert_eq!(
            Linkage::Single.cluster_similarity(&[], &[attr(0)], &table()),
            0.0
        );
        assert_eq!(
            Linkage::Complete.cluster_similarity(&[attr(0)], &[], &table()),
            0.0
        );
    }

    #[test]
    fn names() {
        assert_eq!(Linkage::Single.name(), "single");
        assert_eq!(Linkage::Complete.name(), "complete");
        assert_eq!(Linkage::Average.name(), "average");
    }
}
