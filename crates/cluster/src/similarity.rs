//! Attribute-level similarity access for the clustering algorithm.

// Imported for the get-only signature cache in `MeasureAdapter` below.
#[allow(clippy::disallowed_types)]
use std::collections::HashMap;

use mube_schema::attribute::normalize_name;
use mube_schema::{AttrId, Universe};
use mube_similarity::SimilarityMeasure;

/// Similarity between two attributes of a universe.
///
/// The clustering algorithm only needs pairwise lookups; implementations may
/// compute on the fly (see [`MeasureAdapter`]) or serve from a precomputed
/// matrix (the engine crate does this for the optimizer's hot path).
pub trait AttrSimilarity {
    /// Similarity of the named attributes, in `[0, 1]`.
    fn similarity(&self, a: AttrId, b: AttrId) -> f64;

    /// Optional similarity-equivalence class of an attribute.
    ///
    /// Contract: whenever `class_of(a) == class_of(b)` (and both are
    /// `Some`), then for every attribute `x`, `similarity(a, x)` and
    /// `similarity(b, x)` return the *bitwise-identical* value, and
    /// `similarity(a, b) == similarity(a, a)`. Kernels may then evaluate one
    /// representative per class pair and reuse the value for every member
    /// pair — the incremental kernel's seed pass does exactly this. The
    /// default (no class information) keeps every pair individually
    /// evaluated, which is always correct.
    fn class_of(&self, _attr: AttrId) -> Option<u32> {
        None
    }

    /// Optional sparse neighbor structure over the equivalence classes of
    /// [`AttrSimilarity::class_of`].
    ///
    /// Contract: when this returns `Some`, it must do so for *every* class
    /// the source assigns, and the slice must hold exactly the classes `d ≠
    /// class` whose members have non-zero similarity to members of `class` —
    /// sorted ascending, symmetric (`d` lists `class` iff `class` lists
    /// `d`). Any class pair absent from each other's lists must satisfy
    /// `similarity(a, b) == 0.0` exactly, for all members `a`, `b`. Kernels
    /// may then skip absent class pairs entirely wherever a 0.0 similarity
    /// cannot matter (the incremental seed pass does this for θ > 0). The
    /// default (`None`) keeps every class pair evaluated, which is always
    /// correct.
    fn neighbors_of_class(&self, _class: u32) -> Option<&[u32]> {
        None
    }
}

/// Computes similarities on demand from a universe and a string measure,
/// caching per-attribute normalized names and token signatures.
// The signature cache is read through keyed `get` only (never iterated),
// so hash order cannot reach any result.
#[allow(clippy::disallowed_types)]
pub struct MeasureAdapter<'a> {
    measure: &'a dyn SimilarityMeasure,
    signatures: HashMap<AttrId, mube_similarity::measure::Signature>,
}

#[allow(clippy::disallowed_types)]
impl<'a> MeasureAdapter<'a> {
    /// Prepares signatures for every attribute of `universe`.
    pub fn new(universe: &Universe, measure: &'a dyn SimilarityMeasure) -> Self {
        let mut signatures = HashMap::with_capacity(universe.total_attrs());
        for source in universe.sources() {
            for (j, name) in source.attributes().iter().enumerate() {
                let attr = AttrId::new(source.id(), j as u32);
                signatures.insert(attr, measure.signature(&normalize_name(name)));
            }
        }
        Self {
            measure,
            signatures,
        }
    }
}

impl AttrSimilarity for MeasureAdapter<'_> {
    fn similarity(&self, a: AttrId, b: AttrId) -> f64 {
        match (self.signatures.get(&a), self.signatures.get(&b)) {
            // A kind mismatch is impossible (both signatures come from
            // `self.measure`); treat it as "no evidence" regardless.
            (Some(sa), Some(sb)) => self.measure.similarity_sig(sa, sb).unwrap_or(0.0),
            // An attribute outside the prepared universe carries no
            // similarity evidence.
            _ => 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mube_schema::{SourceBuilder, SourceId};
    use mube_similarity::NgramJaccard;

    fn universe() -> Universe {
        let mut u = Universe::new();
        u.add_source(SourceBuilder::new("a").attributes(["Author", "Title"]))
            .unwrap();
        u.add_source(SourceBuilder::new("b").attributes(["author", "keyword"]))
            .unwrap();
        u
    }

    #[test]
    fn adapter_matches_direct_measure_on_normalized_names() {
        let u = universe();
        let m = NgramJaccard::default();
        let adapter = MeasureAdapter::new(&u, &m);
        let a = AttrId::new(SourceId(0), 0); // "Author"
        let b = AttrId::new(SourceId(1), 0); // "author"
        assert_eq!(adapter.similarity(a, b), 1.0);
        let t = AttrId::new(SourceId(0), 1); // "Title"
        let k = AttrId::new(SourceId(1), 1); // "keyword"
        assert_eq!(adapter.similarity(t, k), m.similarity("title", "keyword"));
    }

    #[test]
    fn adapter_is_symmetric() {
        let u = universe();
        let m = NgramJaccard::default();
        let adapter = MeasureAdapter::new(&u, &m);
        let a = AttrId::new(SourceId(0), 1);
        let b = AttrId::new(SourceId(1), 1);
        assert_eq!(adapter.similarity(a, b), adapter.similarity(b, a));
    }
}
