//! Matching by constrained clustering — µBE's `Match(S)` operator
//! (Section 3, Algorithm 1).
//!
//! `Match(S)` determines the best 1:1 matching between the schemas of the
//! data sources in `S` and returns the resulting mediated schema together
//! with its matching quality, which is the value of the `F1` QEF.
//!
//! The algorithm is greedy constrained similarity clustering:
//!
//! 1. Every GA constraint becomes its own cluster (flagged *keep*); every
//!    remaining attribute of every source in `S` becomes a singleton cluster.
//! 2. Repeatedly: enumerate all cluster pairs with similarity ≥ θ into a
//!    priority queue; pop pairs in decreasing similarity; merge a pair if
//!    neither side was already merged this round and the union is a valid GA
//!    (no two attributes from one source). If exactly one side was already
//!    consumed, flag the other as a *merge candidate* so it survives to the
//!    next round (its partner grew; under single linkage the grown cluster
//!    is at least as similar). Clusters that are neither merged, nor
//!    candidates, nor keep-flagged are eliminated — their best similarity to
//!    anything is below θ, so they can never join a GA.
//! 3. Stop when a round sets no merge candidates.
//!
//! **Reconstruction note.** The paper's Algorithm 1 line 21 prints the
//! elimination condition as "(newly merged cluster) ∨ mergecand ∨ keep →
//! eliminate", which would delete the user's GA constraints and every merged
//! cluster — contradicting the prose and the output contract (`G ⊑ M`). We
//! implement the evidently intended complement: *eliminate clusters that
//! have never merged, are not merge candidates, and are not keep-flagged.*
//! The `keep` flag propagates through merges so grown constraint clusters
//! can never be eliminated.
//!
//! Cluster similarity is **single linkage** (the maximum similarity between
//! an attribute of one cluster and an attribute of the other) — this is what
//! makes GA constraints "bridge" dissimilar attributes: the cluster keeps
//! growing from both seeds without the dissimilar pair penalizing it.
//! Complete and average linkage are provided for the ablation benches.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod algorithm;
mod incremental;
pub mod linkage;
pub mod quality;
pub mod similarity;
mod source_mask;

pub use algorithm::{
    match_sources, match_sources_deferring_spans, MatchConfig, MatchKernel, MatchOutcome,
    MatchStats,
};
pub use linkage::Linkage;
pub use quality::{ga_quality, schema_quality};
pub use similarity::{AttrSimilarity, MeasureAdapter};
