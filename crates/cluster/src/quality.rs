//! Matching-quality computation (the `F1` QEF).
//!
//! Section 3: "We define the quality of matching within a cluster as the
//! maximum similarity between any two attributes in this cluster. [...] We
//! define the quality of matching of the whole mediated schema, M, as the
//! average quality of matching for all the GAs of this schema."

use mube_schema::{GlobalAttribute, MediatedSchema};

use crate::linkage::total_max;
use crate::similarity::AttrSimilarity;

/// Quality of one GA: the maximum pairwise attribute similarity inside it.
///
/// A singleton GA (possible only as a user constraint) is scored 1.0 — a
/// single attribute carries no mismatch evidence, and scoring it 0 would
/// penalize users for pinning an attribute they care about.
pub fn ga_quality(ga: &GlobalAttribute, sim: &dyn AttrSimilarity) -> f64 {
    let attrs: Vec<_> = ga.attrs().collect();
    if attrs.len() <= 1 {
        return 1.0;
    }
    let mut best = 0.0f64;
    for i in 0..attrs.len() {
        for j in i + 1..attrs.len() {
            best = total_max(best, sim.similarity(attrs[i], attrs[j]));
        }
    }
    best
}

/// Quality of a mediated schema: the mean GA quality, or 0.0 for an empty
/// schema (an empty schema expresses no matching at all).
pub fn schema_quality(schema: &MediatedSchema, sim: &dyn AttrSimilarity) -> f64 {
    if schema.is_empty() {
        return 0.0;
    }
    schema
        .gas()
        .iter()
        .map(|ga| ga_quality(ga, sim))
        .sum::<f64>()
        / schema.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use mube_schema::{AttrId, SourceId};

    /// Similarity = 1 - |i - j| / 10 over source indices.
    struct GradientSim;

    impl AttrSimilarity for GradientSim {
        fn similarity(&self, a: AttrId, b: AttrId) -> f64 {
            1.0 - f64::from(a.source.0.abs_diff(b.source.0)) / 10.0
        }
    }

    fn ga(sources: &[u32]) -> GlobalAttribute {
        GlobalAttribute::new(sources.iter().map(|&s| AttrId::new(SourceId(s), 0))).unwrap()
    }

    #[test]
    fn singleton_quality_is_one() {
        assert_eq!(ga_quality(&ga(&[3]), &GradientSim), 1.0);
    }

    #[test]
    fn pair_quality_is_their_similarity() {
        assert!((ga_quality(&ga(&[0, 3]), &GradientSim) - 0.7).abs() < 1e-12);
    }

    #[test]
    fn multi_attr_quality_is_max_pair() {
        // Pairs: (0,3)=0.7, (0,4)=0.6, (3,4)=0.9 -> max 0.9.
        assert!((ga_quality(&ga(&[0, 3, 4]), &GradientSim) - 0.9).abs() < 1e-12);
    }

    #[test]
    fn schema_quality_is_mean_over_gas() {
        let m = MediatedSchema::new([ga(&[0, 1]), ga(&[0, 5])]);
        // GA qualities: 0.9 and 0.5 -> mean 0.7.
        assert!((schema_quality(&m, &GradientSim) - 0.7).abs() < 1e-12);
    }

    #[test]
    fn empty_schema_quality_is_zero() {
        assert_eq!(schema_quality(&MediatedSchema::empty(), &GradientSim), 0.0);
    }
}
