//! Word-packed source-membership sets for clusters.
//!
//! A cluster only ever asks two questions of its source set: "is it disjoint
//! from that cluster's?" (the merge validity gate, hit for every candidate
//! pair the kernels consider) and "what is the union?" (the merge itself).
//! Source ids are dense universe indices, so both are word-level AND/OR
//! passes over a packed bitmap — no tree walk, no per-element compare.

use mube_schema::SourceId;

/// A set of [`SourceId`]s packed 64 per `u64` word.
///
/// The word vector is only as long as needed for the highest member, so
/// masks of differently-sized clusters interoperate: missing high words are
/// treated as zero.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub(crate) struct SourceMask {
    words: Vec<u64>,
}

/// The (word, bit) position of a source id.
fn word_bit(source: SourceId) -> (usize, u64) {
    let i = source.index();
    (i / 64, 1u64 << (i % 64))
}

impl SourceMask {
    /// The mask containing exactly `source`.
    pub(crate) fn singleton(source: SourceId) -> Self {
        let mut mask = Self::default();
        mask.insert(source);
        mask
    }

    /// The mask of all ids yielded by `ids`.
    pub(crate) fn from_ids<I: IntoIterator<Item = SourceId>>(ids: I) -> Self {
        let mut mask = Self::default();
        for id in ids {
            mask.insert(id);
        }
        mask
    }

    /// Adds `source` to the mask, growing the word vector if needed.
    pub(crate) fn insert(&mut self, source: SourceId) {
        let (w, bit) = word_bit(source);
        if self.words.len() <= w {
            self.words.resize(w + 1, 0);
        }
        self.words[w] |= bit;
    }

    /// Whether `source` is a member. The kernels only need disjointness and
    /// union; membership is for assertions.
    #[cfg(test)]
    pub(crate) fn contains(&self, source: SourceId) -> bool {
        let (w, bit) = word_bit(source);
        self.words.get(w).is_some_and(|&word| word & bit != 0)
    }

    /// Whether the two masks share no source: AND across the common prefix
    /// (words beyond either length are zero and intersect nothing).
    pub(crate) fn is_disjoint(&self, other: &SourceMask) -> bool {
        self.words.iter().zip(&other.words).all(|(a, b)| a & b == 0)
    }

    /// The union of the two masks.
    pub(crate) fn union(&self, other: &SourceMask) -> SourceMask {
        let (long, short) = if self.words.len() >= other.words.len() {
            (self, other)
        } else {
            (other, self)
        };
        let mut words = long.words.clone();
        for (w, s) in words.iter_mut().zip(&short.words) {
            *w |= s;
        }
        SourceMask { words }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(list: &[u32]) -> SourceMask {
        SourceMask::from_ids(list.iter().map(|&i| SourceId(i)))
    }

    #[test]
    fn singleton_contains_only_its_source() {
        let m = SourceMask::singleton(SourceId(5));
        assert!(m.contains(SourceId(5)));
        assert!(!m.contains(SourceId(4)));
        assert!(!m.contains(SourceId(500)));
    }

    #[test]
    fn disjointness_across_word_boundaries() {
        // Straddle the 63/64/65 boundary where the word index changes.
        for hi in [63u32, 64, 65, 127, 128] {
            let a = ids(&[0, hi]);
            let b = ids(&[hi]);
            let c = ids(&[hi + 1]);
            assert!(!a.is_disjoint(&b), "hi={hi}");
            assert!(!b.is_disjoint(&a), "hi={hi}");
            assert!(a.is_disjoint(&c), "hi={hi}");
            assert!(c.is_disjoint(&a), "hi={hi}");
        }
    }

    #[test]
    fn unequal_word_lengths_interoperate() {
        let small = ids(&[1]);
        let large = ids(&[1, 200]);
        assert!(!small.is_disjoint(&large));
        let other = ids(&[2]);
        assert!(other.is_disjoint(&large));
    }

    #[test]
    fn union_collects_both_sides() {
        for (a, b) in [(&[0u32, 63][..], &[64u32, 129][..]), (&[130][..], &[2][..])] {
            let u = ids(a).union(&ids(b));
            for &i in a.iter().chain(b) {
                assert!(u.contains(SourceId(i)), "{i} missing from union");
            }
            assert!(!u.contains(SourceId(7)));
            // Union is symmetric regardless of which side is longer.
            assert_eq!(u, ids(b).union(&ids(a)));
        }
    }

    #[test]
    fn empty_mask_is_disjoint_from_everything() {
        let empty = SourceMask::default();
        assert!(empty.is_disjoint(&ids(&[0, 64])));
        assert!(ids(&[0]).is_disjoint(&empty));
        assert_eq!(empty.union(&ids(&[3])), ids(&[3]));
    }
}
