//! Property tests for the invariant auditor: clustering output always
//! passes, and targeted corruptions of a valid schema/solution are caught
//! with the precise violation code.

use proptest::prelude::*;

use mube_audit::{SchemaAuditor, SolutionAuditor, SolutionFacts};
use mube_cluster::{match_sources, MatchConfig, MeasureAdapter};
use mube_schema::{
    Constraints, GlobalAttribute, MediatedSchema, SourceBuilder, SourceId, Universe,
};
use mube_similarity::NgramJaccard;

/// A universe of 2–8 sources over a vocabulary with deliberate
/// near-duplicates so clustering actually merges attributes.
fn arb_universe() -> impl Strategy<Value = Universe> {
    let vocab = prop::sample::select(vec![
        "title",
        "book title",
        "author",
        "author name",
        "keyword",
        "keywords",
        "isbn",
        "price",
        "publication year",
        "publication years",
        "venue",
    ]);
    let source = (prop::collection::vec(vocab, 1..5), 1u64..1000);
    prop::collection::vec(source, 2..8).prop_map(|sources| {
        let mut u = Universe::new();
        for (i, (names, card)) in sources.into_iter().enumerate() {
            u.add_source(
                SourceBuilder::new(format!("s{i}"))
                    .attributes(names)
                    .cardinality(card),
            )
            .unwrap();
        }
        u
    })
}

/// Runs the paper's Match over the full universe with no constraints.
fn cluster(universe: &Universe, theta: f64) -> (MediatedSchema, MatchConfig) {
    let measure = NgramJaccard::default();
    let adapter = MeasureAdapter::new(universe, &measure);
    let ids: Vec<SourceId> = universe.sources().iter().map(|s| s.id()).collect();
    let config = MatchConfig {
        theta,
        ..MatchConfig::default()
    };
    let outcome = match_sources(universe, &ids, &Constraints::none(), &config, &adapter)
        .expect("no constraints -> always feasible");
    (outcome.schema, config)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Positive path: whatever the clustering algorithm emits satisfies
    /// every §2 schema invariant under the exact same θ/β/similarity.
    #[test]
    fn clustered_schemas_always_pass_audit(
        universe in arb_universe(),
        theta in 0.15f64..0.95,
    ) {
        let measure = NgramJaccard::default();
        let adapter = MeasureAdapter::new(&universe, &measure);
        let (schema, config) = cluster(&universe, theta);
        let none = Constraints::none();
        let report = SchemaAuditor::new(&universe)
            .constraints(&none)
            .theta(config.theta)
            .beta(config.beta)
            .similarity(&adapter)
            .audit(&schema);
        prop_assert!(report.is_clean(), "clean schema flagged: {report}");
    }

    /// Duplicating one attribute into a second GA breaks pairwise
    /// disjointness (paper Def. 2) and nothing can mask it.
    #[test]
    fn duplicated_attr_across_gas_is_flagged(
        universe in arb_universe(),
        theta in 0.15f64..0.95,
    ) {
        let (schema, _) = cluster(&universe, theta);
        prop_assume!(!schema.is_empty());
        let stolen = schema.gas()[0].attrs().next().expect("GAs are non-empty");
        let corrupted = MediatedSchema::new(
            schema
                .gas()
                .iter()
                .cloned()
                .chain([GlobalAttribute::singleton(stolen)]),
        );
        let report = SchemaAuditor::new(&universe).audit(&corrupted);
        prop_assert!(
            report.has_code("schema.overlapping-gas"),
            "overlap not flagged: {report}"
        );
    }

    /// Dropping a constraint-required source from the selection violates
    /// `C ⊆ S` no matter what the rest of the solution looks like.
    #[test]
    fn dropping_required_source_is_flagged(
        universe in arb_universe(),
        theta in 0.15f64..0.95,
    ) {
        let mut constraints = Constraints::none();
        constraints.require_source(SourceId(0));
        // Select every source *except* the required one.
        let selected: Vec<SourceId> = universe
            .sources()
            .iter()
            .map(|s| s.id())
            .filter(|&id| id != SourceId(0))
            .collect();
        let measure = NgramJaccard::default();
        let adapter = MeasureAdapter::new(&universe, &measure);
        let config = MatchConfig { theta, ..MatchConfig::default() };
        let outcome =
            match_sources(&universe, &selected, &Constraints::none(), &config, &adapter)
                .expect("unconstrained match");
        let breakdown = vec![("matching".to_owned(), 1.0, 0.5)];
        let report = SolutionAuditor::new(&universe)
            .constraints(&constraints)
            .max_sources(universe.len())
            .audit(&SolutionFacts {
                selected: &selected,
                schema: &outcome.schema,
                qef_breakdown: &breakdown,
                overall_quality: 0.5,
            });
        prop_assert!(
            report.has_code("selection.missing-required-source"),
            "missing required source not flagged: {report}"
        );
    }

    /// A QEF value pushed out of `[0, 1]` is reported per-QEF by name.
    #[test]
    fn qef_out_of_range_is_flagged(
        universe in arb_universe(),
        theta in 0.15f64..0.95,
        excess in 0.01f64..5.0,
        negative in proptest::arbitrary::any::<bool>(),
    ) {
        let (schema, _) = cluster(&universe, theta);
        let selected: Vec<SourceId> =
            universe.sources().iter().map(|s| s.id()).collect();
        let bad_value = if negative { -excess } else { 1.0 + excess };
        let breakdown = vec![
            ("matching".to_owned(), 0.5, bad_value),
            ("coverage".to_owned(), 0.5, 0.5),
        ];
        let report = SolutionAuditor::new(&universe)
            .max_sources(universe.len())
            .audit(&SolutionFacts {
                selected: &selected,
                schema: &schema,
                qef_breakdown: &breakdown,
                overall_quality: 0.5 * bad_value + 0.25,
            });
        prop_assert!(
            report.has_code("qef.out-of-range"),
            "out-of-range QEF not flagged: {report}"
        );
    }
}
