//! Static invariant auditor for µBE mediated schemas and solutions.
//!
//! The paper's Section 2 ("Problem Definition") pins down exactly what a
//! legal output of µBE looks like: GAs are non-empty and hold at most one
//! attribute per source (Definition 1); the GAs of a mediated schema are
//! pairwise disjoint and span the constrained sources (Definition 2); every
//! user GA constraint is subsumed by the output (`G ⊑ M`, Definition 3);
//! the selection respects `|S| ≤ m` and `C ⊆ S`; QEF values and their
//! weighted combination live in `[0, 1]` on the probability simplex.
//!
//! This crate turns each of those rules into a machine check:
//!
//! * [`SchemaAuditor`] verifies a [`mube_schema::MediatedSchema`] (plus
//!   optional constraints, θ, β, and a similarity oracle) and returns an
//!   [`AuditReport`] of structured [`AuditViolation`]s — never a panic.
//! * [`SolutionAuditor`] additionally verifies the source-selection side of
//!   a solved problem from plain [`SolutionFacts`], so it does not depend
//!   on the engine crate (the engine depends on *us* and runs the auditor
//!   as a debug-mode oracle after every solve).
//!
//! See DESIGN.md's "Invariants & auditing" section for the rule ↔ variant
//! mapping.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod schema_audit;
pub mod solution_audit;
pub mod violation;

pub use mube_cluster::AttrSimilarity;
pub use schema_audit::{FnSimilarity, SchemaAuditor};
pub use solution_audit::{SolutionAuditor, SolutionFacts};
pub use violation::{AuditReport, AuditViolation};
