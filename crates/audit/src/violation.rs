//! Structured audit findings.

use std::fmt;

use mube_schema::{AttrId, SourceId};

/// One violated invariant, with enough context to locate the defect.
///
/// Each variant corresponds to a rule of the paper's Section 2/3 problem
/// statement (see DESIGN.md's "Invariants & auditing" table). Auditors
/// return these as values — they never panic — so callers decide whether a
/// violation is fatal (the engine's debug oracle) or data (tests, benches).
#[derive(Debug, Clone, PartialEq)]
pub enum AuditViolation {
    /// Definition 1: a GA must be non-empty.
    EmptyGa {
        /// Index of the GA in the schema's canonical order.
        ga_index: usize,
    },
    /// Definition 1: a GA holds at most one attribute per source.
    SameSourceInGa {
        /// Index of the GA in the schema's canonical order.
        ga_index: usize,
        /// First attribute of the clashing pair.
        first: AttrId,
        /// Second attribute of the clashing pair.
        second: AttrId,
    },
    /// Definition 2: the GAs of a mediated schema are pairwise disjoint.
    OverlappingGas {
        /// Index of the GA that first claimed the attribute.
        first_ga: usize,
        /// Index of the GA that claimed it again.
        second_ga: usize,
        /// The shared attribute.
        attr: AttrId,
    },
    /// Well-formedness: every schema attribute must exist in the universe.
    UnknownAttribute {
        /// Index of the offending GA.
        ga_index: usize,
        /// The dangling attribute id.
        attr: AttrId,
    },
    /// Definition 3 / Section 2.4: every user GA constraint must be subsumed
    /// by the output schema (`G ⊑ M`).
    GaConstraintNotSubsumed {
        /// Index of the constraint in `Constraints::gas()` order.
        constraint_index: usize,
    },
    /// Definition 2: the schema must span every explicitly constrained
    /// source (`M` valid on `C`).
    ConstraintSourceNotSpanned {
        /// The constrained source no GA touches.
        source: SourceId,
    },
    /// Section 3: every non-constraint GA has at least β attributes
    /// (`∀g ∈ (M − G): |g| ≥ β`).
    GaBelowBeta {
        /// Index of the offending GA.
        ga_index: usize,
        /// Its size.
        len: usize,
        /// The configured floor.
        beta: usize,
    },
    /// Section 3: clusters merge only at similarity ≥ θ, so every
    /// non-constraint GA's matching quality (max pairwise similarity) is
    /// at least θ.
    GaQualityBelowTheta {
        /// Index of the offending GA.
        ga_index: usize,
        /// Its measured quality.
        quality: f64,
        /// The configured threshold.
        theta: f64,
    },
    /// Similarities are scores in `[0, 1]` and must be NaN-free.
    SimilarityOutOfRange {
        /// First attribute of the scored pair.
        a: AttrId,
        /// Second attribute of the scored pair.
        b: AttrId,
        /// The offending score.
        value: f64,
    },
    /// A selected source id does not exist in the universe.
    UnknownSelectedSource {
        /// The dangling id.
        source: SourceId,
    },
    /// A source appears more than once in the selection.
    DuplicateSelectedSource {
        /// The repeated id.
        source: SourceId,
    },
    /// Section 2: at most `m` sources may be selected (`|S| ≤ m`).
    TooManySources {
        /// Number of selected sources.
        selected: usize,
        /// The configured budget `m`.
        max_sources: usize,
    },
    /// Section 2.4: every constraint-required source must be selected
    /// (`C ⊆ S`, including sources implied by GA constraints).
    MissingRequiredSource {
        /// The required-but-unselected source.
        source: SourceId,
    },
    /// The schema may only mention attributes of selected sources
    /// (`M` is a schema *over* `S`).
    SchemaSourceOutsideSelection {
        /// Index of the offending GA.
        ga_index: usize,
        /// The unselected source it references.
        source: SourceId,
    },
    /// Section 2.3: every QEF value lies in `[0, 1]` and is NaN-free.
    QefOutOfRange {
        /// QEF name.
        name: String,
        /// The offending value.
        value: f64,
    },
    /// Section 2.3: weights are non-negative, finite numbers.
    WeightOutOfRange {
        /// Weight name.
        name: String,
        /// The offending weight.
        weight: f64,
    },
    /// Section 2.3: weights lie on the probability simplex (`Σ w_i = 1`).
    WeightsOffSimplex {
        /// The actual sum.
        sum: f64,
    },
    /// The reported overall quality must equal the weighted QEF sum.
    QualityMismatch {
        /// `Q(S)` as reported by the optimizer.
        reported: f64,
        /// `Σ w_i · F_i(S)` recomputed from the breakdown.
        recomputed: f64,
    },
    /// Overall quality is a weighted mean of `[0, 1]` values, so it must lie
    /// in `[0, 1]` and be NaN-free.
    QualityOutOfRange {
        /// The offending value.
        value: f64,
    },
}

impl AuditViolation {
    /// A stable, grep-friendly code naming the violated rule.
    pub fn code(&self) -> &'static str {
        match self {
            AuditViolation::EmptyGa { .. } => "ga.empty",
            AuditViolation::SameSourceInGa { .. } => "ga.same-source",
            AuditViolation::OverlappingGas { .. } => "schema.overlapping-gas",
            AuditViolation::UnknownAttribute { .. } => "schema.unknown-attribute",
            AuditViolation::GaConstraintNotSubsumed { .. } => "constraint.ga-not-subsumed",
            AuditViolation::ConstraintSourceNotSpanned { .. } => "constraint.source-not-spanned",
            AuditViolation::GaBelowBeta { .. } => "ga.below-beta",
            AuditViolation::GaQualityBelowTheta { .. } => "ga.quality-below-theta",
            AuditViolation::SimilarityOutOfRange { .. } => "similarity.out-of-range",
            AuditViolation::UnknownSelectedSource { .. } => "selection.unknown-source",
            AuditViolation::DuplicateSelectedSource { .. } => "selection.duplicate-source",
            AuditViolation::TooManySources { .. } => "selection.too-many-sources",
            AuditViolation::MissingRequiredSource { .. } => "selection.missing-required-source",
            AuditViolation::SchemaSourceOutsideSelection { .. } => {
                "schema.source-outside-selection"
            }
            AuditViolation::QefOutOfRange { .. } => "qef.out-of-range",
            AuditViolation::WeightOutOfRange { .. } => "weights.out-of-range",
            AuditViolation::WeightsOffSimplex { .. } => "weights.off-simplex",
            AuditViolation::QualityMismatch { .. } => "quality.mismatch",
            AuditViolation::QualityOutOfRange { .. } => "quality.out-of-range",
        }
    }
}

impl fmt::Display for AuditViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] ", self.code())?;
        match self {
            AuditViolation::EmptyGa { ga_index } => write!(f, "GA #{ga_index} is empty"),
            AuditViolation::SameSourceInGa {
                ga_index,
                first,
                second,
            } => write!(
                f,
                "GA #{ga_index} holds two attributes of one source: {first} and {second}"
            ),
            AuditViolation::OverlappingGas {
                first_ga,
                second_ga,
                attr,
            } => write!(
                f,
                "GAs #{first_ga} and #{second_ga} both contain attribute {attr}"
            ),
            AuditViolation::UnknownAttribute { ga_index, attr } => {
                write!(f, "GA #{ga_index} references unknown attribute {attr}")
            }
            AuditViolation::GaConstraintNotSubsumed { constraint_index } => write!(
                f,
                "user GA constraint #{constraint_index} is not contained in any schema GA"
            ),
            AuditViolation::ConstraintSourceNotSpanned { source } => write!(
                f,
                "constrained source {source} contributes no attribute to any GA"
            ),
            AuditViolation::GaBelowBeta {
                ga_index,
                len,
                beta,
            } => write!(
                f,
                "non-constraint GA #{ga_index} has {len} attributes, below the β = {beta} floor"
            ),
            AuditViolation::GaQualityBelowTheta {
                ga_index,
                quality,
                theta,
            } => write!(
                f,
                "non-constraint GA #{ga_index} has matching quality {quality}, below θ = {theta}"
            ),
            AuditViolation::SimilarityOutOfRange { a, b, value } => {
                write!(f, "similarity({a}, {b}) = {value} is outside [0, 1]")
            }
            AuditViolation::UnknownSelectedSource { source } => {
                write!(f, "selected source {source} does not exist in the universe")
            }
            AuditViolation::DuplicateSelectedSource { source } => {
                write!(f, "source {source} is selected more than once")
            }
            AuditViolation::TooManySources {
                selected,
                max_sources,
            } => write!(
                f,
                "{selected} sources selected, above the m = {max_sources} budget"
            ),
            AuditViolation::MissingRequiredSource { source } => {
                write!(f, "constraint-required source {source} is not selected")
            }
            AuditViolation::SchemaSourceOutsideSelection { ga_index, source } => write!(
                f,
                "GA #{ga_index} references source {source}, which is not selected"
            ),
            AuditViolation::QefOutOfRange { name, value } => {
                write!(f, "QEF {name:?} evaluates to {value}, outside [0, 1]")
            }
            AuditViolation::WeightOutOfRange { name, weight } => {
                write!(
                    f,
                    "weight {name:?} is {weight}, not a finite non-negative number"
                )
            }
            AuditViolation::WeightsOffSimplex { sum } => {
                write!(f, "weights sum to {sum}, not 1")
            }
            AuditViolation::QualityMismatch {
                reported,
                recomputed,
            } => write!(
                f,
                "reported quality {reported} disagrees with recomputed Σ wᵢFᵢ = {recomputed}"
            ),
            AuditViolation::QualityOutOfRange { value } => {
                write!(f, "overall quality {value} is outside [0, 1]")
            }
        }
    }
}

/// The outcome of one audit: every violated invariant, in detection order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AuditReport {
    violations: Vec<AuditViolation>,
}

impl AuditReport {
    /// Wraps raw violations in a report.
    pub fn new(violations: Vec<AuditViolation>) -> Self {
        AuditReport { violations }
    }

    /// Whether no invariant was violated.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// The violations in detection order.
    pub fn violations(&self) -> &[AuditViolation] {
        &self.violations
    }

    /// Number of violations.
    pub fn len(&self) -> usize {
        self.violations.len()
    }

    /// Whether the report holds no violations (alias of [`AuditReport::is_clean`]
    /// for collection-like call sites).
    pub fn is_empty(&self) -> bool {
        self.violations.is_empty()
    }

    /// Whether some violation carries the given [`AuditViolation::code`].
    pub fn has_code(&self, code: &str) -> bool {
        self.violations.iter().any(|v| v.code() == code)
    }

    /// Consumes the report, yielding the raw violations.
    pub fn into_violations(self) -> Vec<AuditViolation> {
        self.violations
    }

    /// Panics with the full violation list if the report is not clean.
    /// The engine's debug-mode oracle funnels through this.
    #[track_caller]
    pub fn assert_clean(&self, context: &str) {
        assert!(self.is_clean(), "audit failed in {context}:\n{self}");
    }
}

impl fmt::Display for AuditReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.violations.is_empty() {
            return write!(f, "audit clean");
        }
        writeln!(f, "{} violation(s):", self.violations.len())?;
        for v in &self.violations {
            writeln!(f, "  - {v}")?;
        }
        Ok(())
    }
}

impl IntoIterator for AuditReport {
    type Item = AuditViolation;
    type IntoIter = std::vec::IntoIter<AuditViolation>;

    fn into_iter(self) -> Self::IntoIter {
        self.violations.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_and_displayed() {
        let v = AuditViolation::TooManySources {
            selected: 5,
            max_sources: 3,
        };
        assert_eq!(v.code(), "selection.too-many-sources");
        let text = v.to_string();
        assert!(text.contains("selection.too-many-sources"));
        assert!(text.contains('5') && text.contains('3'));
    }

    #[test]
    fn report_accessors() {
        let clean = AuditReport::default();
        assert!(clean.is_clean());
        clean.assert_clean("test");
        let report = AuditReport::new(vec![AuditViolation::QualityOutOfRange { value: 2.0 }]);
        assert!(!report.is_clean());
        assert_eq!(report.len(), 1);
        assert!(report.has_code("quality.out-of-range"));
        assert!(!report.has_code("ga.empty"));
        assert!(report.to_string().contains("1 violation(s)"));
    }

    #[test]
    #[should_panic(expected = "audit failed in oracle")]
    fn assert_clean_panics_with_context() {
        AuditReport::new(vec![AuditViolation::EmptyGa { ga_index: 0 }]).assert_clean("oracle");
    }
}
