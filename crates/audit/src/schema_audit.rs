//! Mediated-schema invariant checks (Definitions 1–3).

use std::collections::{BTreeMap, BTreeSet};

use mube_cluster::AttrSimilarity;
use mube_schema::{AttrId, Constraints, GlobalAttribute, MediatedSchema, Universe};

use crate::violation::{AuditReport, AuditViolation};

/// Adapter making any `Fn(AttrId, AttrId) -> f64` usable as an
/// [`AttrSimilarity`] oracle — handy for tests and synthetic audits.
pub struct FnSimilarity<F>(pub F);

impl<F: Fn(AttrId, AttrId) -> f64> AttrSimilarity for FnSimilarity<F> {
    fn similarity(&self, a: AttrId, b: AttrId) -> f64 {
        (self.0)(a, b)
    }
}

/// Verifies a [`MediatedSchema`] against the paper's structural invariants.
///
/// The auditor is configured builder-style; every input beyond the universe
/// is optional, and checks that need a missing input are skipped:
///
/// * [`SchemaAuditor::constraints`] enables subsumption (`G ⊑ M`) and
///   spanning (`M` valid on `C`) checks, and exempts constraint-derived GAs
///   from the β/θ floors (a user may pin a singleton GA; the paper scores it
///   1.0 and keeps it regardless of β).
/// * [`SchemaAuditor::similarity`] enables the similarity-range check and,
///   together with [`SchemaAuditor::theta`], the per-GA quality floor.
/// * [`SchemaAuditor::beta`] enables the minimum-GA-size check.
///
/// Checks never panic; every defect becomes an [`AuditViolation`] in the
/// returned [`AuditReport`].
pub struct SchemaAuditor<'a> {
    universe: &'a Universe,
    constraints: Option<&'a Constraints>,
    theta: Option<f64>,
    beta: Option<usize>,
    similarity: Option<&'a dyn AttrSimilarity>,
}

impl<'a> SchemaAuditor<'a> {
    /// Starts an auditor for schemas over `universe`.
    pub fn new(universe: &'a Universe) -> Self {
        Self {
            universe,
            constraints: None,
            theta: None,
            beta: None,
            similarity: None,
        }
    }

    /// Supplies the user constraints the schema must honour.
    pub fn constraints(mut self, constraints: &'a Constraints) -> Self {
        self.constraints = Some(constraints);
        self
    }

    /// Supplies the matching threshold θ for the GA-quality floor.
    pub fn theta(mut self, theta: f64) -> Self {
        self.theta = Some(theta);
        self
    }

    /// Supplies the minimum GA size β.
    pub fn beta(mut self, beta: usize) -> Self {
        self.beta = Some(beta);
        self
    }

    /// Supplies the attribute-similarity oracle used for quality checks.
    pub fn similarity(mut self, sim: &'a dyn AttrSimilarity) -> Self {
        self.similarity = Some(sim);
        self
    }

    /// Audits `schema`, returning every violated invariant.
    pub fn audit(&self, schema: &MediatedSchema) -> AuditReport {
        let mut out = Vec::new();
        self.collect(schema, &mut out);
        AuditReport::new(out)
    }

    /// Appends `schema`'s violations to `out` (shared with the solution
    /// auditor, which layers selection checks on top).
    pub(crate) fn collect(&self, schema: &MediatedSchema, out: &mut Vec<AuditViolation>) {
        self.check_ga_validity(schema, out);
        self.check_disjointness(schema, out);
        self.check_constraints(schema, out);
        self.check_floors(schema, out);
    }

    /// Definition 1 per GA (non-empty, one attribute per source) plus
    /// referential integrity against the universe.
    fn check_ga_validity(&self, schema: &MediatedSchema, out: &mut Vec<AuditViolation>) {
        for (ga_index, ga) in schema.gas().iter().enumerate() {
            if ga.is_empty() {
                out.push(AuditViolation::EmptyGa { ga_index });
                continue;
            }
            let mut by_source: BTreeMap<_, AttrId> = BTreeMap::new();
            for attr in ga.attrs() {
                if !self.universe.contains_attr(attr) {
                    out.push(AuditViolation::UnknownAttribute { ga_index, attr });
                }
                if let Some(&first) = by_source.get(&attr.source) {
                    out.push(AuditViolation::SameSourceInGa {
                        ga_index,
                        first,
                        second: attr,
                    });
                } else {
                    by_source.insert(attr.source, attr);
                }
            }
        }
    }

    /// Definition 2, first half: GAs are pairwise disjoint.
    fn check_disjointness(&self, schema: &MediatedSchema, out: &mut Vec<AuditViolation>) {
        let mut owner: BTreeMap<AttrId, usize> = BTreeMap::new();
        for (ga_index, ga) in schema.gas().iter().enumerate() {
            for attr in ga.attrs() {
                if let Some(&first_ga) = owner.get(&attr) {
                    out.push(AuditViolation::OverlappingGas {
                        first_ga,
                        second_ga: ga_index,
                        attr,
                    });
                } else {
                    owner.insert(attr, ga_index);
                }
            }
        }
    }

    /// Definition 3 (`G ⊑ M`) and Definition 2, second half (`M` spans `C`).
    fn check_constraints(&self, schema: &MediatedSchema, out: &mut Vec<AuditViolation>) {
        let Some(constraints) = self.constraints else {
            return;
        };
        for (constraint_index, required) in constraints.gas().iter().enumerate() {
            let subsumed = schema.gas().iter().any(|ga| required.is_subset_of(ga));
            if !subsumed {
                out.push(AuditViolation::GaConstraintNotSubsumed { constraint_index });
            }
        }
        let covered = schema.covered_sources();
        for &source in constraints.sources() {
            if !covered.contains(&source) {
                out.push(AuditViolation::ConstraintSourceNotSpanned { source });
            }
        }
    }

    /// Section 3 floors: `|g| ≥ β` and quality `≥ θ` for every GA not seeded
    /// by a user constraint; similarity scores must themselves be in `[0, 1]`.
    fn check_floors(&self, schema: &MediatedSchema, out: &mut Vec<AuditViolation>) {
        let pinned: BTreeSet<AttrId> = self
            .constraints
            .map(Constraints::constrained_attrs)
            .unwrap_or_default();
        for (ga_index, ga) in schema.gas().iter().enumerate() {
            let exempt = ga.attrs().any(|a| pinned.contains(&a));
            if let Some(beta) = self.beta {
                if !exempt && ga.len() < beta {
                    out.push(AuditViolation::GaBelowBeta {
                        ga_index,
                        len: ga.len(),
                        beta,
                    });
                }
            }
            if let Some(sim) = self.similarity {
                let quality = self.checked_ga_quality(ga, sim, out);
                if let Some(theta) = self.theta {
                    if !exempt && quality < theta {
                        out.push(AuditViolation::GaQualityBelowTheta {
                            ga_index,
                            quality,
                            theta,
                        });
                    }
                }
            }
        }
    }

    /// Max-pairwise-similarity GA quality (singletons score 1.0, matching
    /// `mube_cluster::ga_quality`), flagging any score outside `[0, 1]`.
    fn checked_ga_quality(
        &self,
        ga: &GlobalAttribute,
        sim: &dyn AttrSimilarity,
        out: &mut Vec<AuditViolation>,
    ) -> f64 {
        let attrs: Vec<AttrId> = ga.attrs().collect();
        if attrs.len() <= 1 {
            return 1.0;
        }
        let mut best = 0.0f64;
        for i in 0..attrs.len() {
            for j in i + 1..attrs.len() {
                let value = sim.similarity(attrs[i], attrs[j]);
                if !value.is_finite() || !(0.0..=1.0).contains(&value) {
                    out.push(AuditViolation::SimilarityOutOfRange {
                        a: attrs[i],
                        b: attrs[j],
                        value,
                    });
                }
                // f64::max ignores NaN on the rhs, so a poisoned score
                // cannot silently become the GA's quality.
                best = best.max(value);
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mube_schema::{SourceBuilder, SourceId};

    fn a(s: u32, j: u32) -> AttrId {
        AttrId::new(SourceId(s), j)
    }

    fn ga(attrs: &[(u32, u32)]) -> GlobalAttribute {
        GlobalAttribute::new(attrs.iter().map(|&(s, j)| a(s, j))).expect("valid test GA")
    }

    fn universe() -> Universe {
        let mut u = Universe::new();
        for name in ["s0", "s1", "s2", "s3"] {
            u.add_source(SourceBuilder::new(name).attributes(["x", "y"]))
                .expect("test universe");
        }
        u
    }

    #[test]
    fn clean_schema_passes() {
        let u = universe();
        let schema = MediatedSchema::new([ga(&[(0, 0), (1, 0)]), ga(&[(2, 1), (3, 1)])]);
        let report = SchemaAuditor::new(&u).audit(&schema);
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn overlapping_gas_detected_with_indices() {
        let u = universe();
        let schema = MediatedSchema::new([ga(&[(0, 0), (1, 0)]), ga(&[(1, 0), (2, 0)])]);
        let report = SchemaAuditor::new(&u).audit(&schema);
        assert!(report.has_code("schema.overlapping-gas"));
        assert!(report
            .violations()
            .iter()
            .any(|v| matches!(v, AuditViolation::OverlappingGas { attr, .. } if *attr == a(1, 0))));
    }

    #[test]
    fn unknown_attribute_detected() {
        let u = universe();
        let schema = MediatedSchema::new([ga(&[(0, 0), (9, 0)])]);
        let report = SchemaAuditor::new(&u).audit(&schema);
        assert!(report.has_code("schema.unknown-attribute"));
    }

    #[test]
    fn unsubsumed_ga_constraint_detected() {
        let u = universe();
        let mut c = Constraints::none();
        c.require_ga(ga(&[(0, 0), (2, 0)]));
        let schema = MediatedSchema::new([ga(&[(0, 0), (1, 0)])]);
        let report = SchemaAuditor::new(&u).constraints(&c).audit(&schema);
        assert!(report.has_code("constraint.ga-not-subsumed"));
        // A schema whose GA grows the constraint is fine.
        let grown = MediatedSchema::new([ga(&[(0, 0), (1, 1), (2, 0)])]);
        assert!(SchemaAuditor::new(&u)
            .constraints(&c)
            .audit(&grown)
            .is_clean());
    }

    #[test]
    fn unspanned_constraint_source_detected() {
        let u = universe();
        let mut c = Constraints::none();
        c.require_source(SourceId(3));
        let schema = MediatedSchema::new([ga(&[(0, 0), (1, 0)])]);
        let report = SchemaAuditor::new(&u).constraints(&c).audit(&schema);
        assert!(report.has_code("constraint.source-not-spanned"));
    }

    #[test]
    fn beta_floor_exempts_constraint_gas() {
        let u = universe();
        let mut c = Constraints::none();
        c.require_ga(ga(&[(2, 0)]));
        let schema = MediatedSchema::new([ga(&[(0, 0), (1, 0)]), ga(&[(2, 0)])]);
        let report = SchemaAuditor::new(&u)
            .constraints(&c)
            .beta(2)
            .audit(&schema);
        assert!(report.is_clean(), "{report}");
        // Without the constraint the singleton violates β = 2.
        let report = SchemaAuditor::new(&u).beta(2).audit(&schema);
        assert!(report.has_code("ga.below-beta"));
    }

    #[test]
    fn theta_floor_uses_max_pair_quality() {
        let u = universe();
        let sim = FnSimilarity(|x: AttrId, y: AttrId| {
            if x.source.0.abs_diff(y.source.0) <= 1 {
                0.9
            } else {
                0.1
            }
        });
        let good = MediatedSchema::new([ga(&[(0, 0), (1, 0)])]);
        let bad = MediatedSchema::new([ga(&[(0, 1), (2, 1)])]);
        let auditor = || SchemaAuditor::new(&u).similarity(&sim).theta(0.75);
        assert!(auditor().audit(&good).is_clean());
        assert!(auditor().audit(&bad).has_code("ga.quality-below-theta"));
    }

    #[test]
    fn similarity_out_of_range_detected() {
        let u = universe();
        let sim = FnSimilarity(|_: AttrId, _: AttrId| f64::NAN);
        let schema = MediatedSchema::new([ga(&[(0, 0), (1, 0)])]);
        let report = SchemaAuditor::new(&u).similarity(&sim).audit(&schema);
        assert!(report.has_code("similarity.out-of-range"));
    }
}
