//! Whole-solution invariant checks (selection, QEF values, weights).

use std::collections::BTreeSet;

use mube_cluster::AttrSimilarity;
use mube_schema::{Constraints, MediatedSchema, SourceId, Universe};

use crate::schema_audit::SchemaAuditor;
use crate::violation::{AuditReport, AuditViolation};

/// Absolute tolerance for floating-point identity checks (simplex sums and
/// the reported-vs-recomputed quality). QEF combination is a handful of
/// multiply-adds, so anything beyond this is a logic error, not rounding.
const TOLERANCE: f64 = 1e-6;

/// Tolerance for individual QEF values: normalized aggregates may land a few
/// ulps above 1.0, matching the engine's own `1e-9` debug assertion.
const VALUE_EPS: f64 = 1e-9;

/// The facts of one solved µBE problem, decoupled from the engine's own
/// `Solution` type so the auditor can sit *below* `mube-core` in the
/// dependency graph (the engine depends on the auditor, not vice versa).
#[derive(Debug, Clone, Copy)]
pub struct SolutionFacts<'s> {
    /// The selected sources `S`.
    pub selected: &'s [SourceId],
    /// The mediated schema `M = Match(S)`.
    pub schema: &'s MediatedSchema,
    /// Per-QEF `(name, weight, value)` breakdown.
    pub qef_breakdown: &'s [(String, f64, f64)],
    /// The overall quality `Q(S)` the optimizer reported.
    pub overall_quality: f64,
}

/// Verifies a full solution: everything [`SchemaAuditor`] checks on the
/// schema, plus the selection side (`|S| ≤ m`, `C ⊆ S`, no dangling or
/// duplicate sources, schema confined to `S`) and the quality arithmetic
/// (QEF values in `[0, 1]`, weights on the simplex, `Q(S) = Σ wᵢFᵢ(S)`).
pub struct SolutionAuditor<'a> {
    schema_auditor: SchemaAuditor<'a>,
    universe: &'a Universe,
    constraints: Option<&'a Constraints>,
    max_sources: Option<usize>,
}

impl<'a> SolutionAuditor<'a> {
    /// Starts an auditor for solutions over `universe`.
    pub fn new(universe: &'a Universe) -> Self {
        Self {
            schema_auditor: SchemaAuditor::new(universe),
            universe,
            constraints: None,
            max_sources: None,
        }
    }

    /// Supplies the user constraints the solution must honour.
    pub fn constraints(mut self, constraints: &'a Constraints) -> Self {
        self.schema_auditor = self.schema_auditor.constraints(constraints);
        self.constraints = Some(constraints);
        self
    }

    /// Supplies the matching threshold θ for the GA-quality floor.
    pub fn theta(mut self, theta: f64) -> Self {
        self.schema_auditor = self.schema_auditor.theta(theta);
        self
    }

    /// Supplies the minimum GA size β.
    pub fn beta(mut self, beta: usize) -> Self {
        self.schema_auditor = self.schema_auditor.beta(beta);
        self
    }

    /// Supplies the attribute-similarity oracle used for quality checks.
    pub fn similarity(mut self, sim: &'a dyn AttrSimilarity) -> Self {
        self.schema_auditor = self.schema_auditor.similarity(sim);
        self
    }

    /// Supplies the source budget `m`.
    pub fn max_sources(mut self, m: usize) -> Self {
        self.max_sources = Some(m);
        self
    }

    /// Audits the solution facts, returning every violated invariant.
    pub fn audit(&self, facts: &SolutionFacts<'_>) -> AuditReport {
        let mut out = Vec::new();
        let selected = self.check_selection(facts, &mut out);
        self.schema_auditor.collect(facts.schema, &mut out);
        self.check_schema_confinement(facts.schema, &selected, &mut out);
        self.check_quality(facts, &mut out);
        AuditReport::new(out)
    }

    /// `|S| ≤ m`, `C ⊆ S`, ids valid and unique. Returns the selection as a
    /// set for the confinement check.
    fn check_selection(
        &self,
        facts: &SolutionFacts<'_>,
        out: &mut Vec<AuditViolation>,
    ) -> BTreeSet<SourceId> {
        let mut selected = BTreeSet::new();
        for &source in facts.selected {
            if self.universe.source(source).is_none() {
                out.push(AuditViolation::UnknownSelectedSource { source });
            }
            if !selected.insert(source) {
                out.push(AuditViolation::DuplicateSelectedSource { source });
            }
        }
        if let Some(max_sources) = self.max_sources {
            if facts.selected.len() > max_sources {
                out.push(AuditViolation::TooManySources {
                    selected: facts.selected.len(),
                    max_sources,
                });
            }
        }
        if let Some(constraints) = self.constraints {
            for source in constraints.required_sources() {
                if !selected.contains(&source) {
                    out.push(AuditViolation::MissingRequiredSource { source });
                }
            }
        }
        selected
    }

    /// `M` is a schema over `S`: no GA may reference an unselected source.
    fn check_schema_confinement(
        &self,
        schema: &MediatedSchema,
        selected: &BTreeSet<SourceId>,
        out: &mut Vec<AuditViolation>,
    ) {
        for (ga_index, ga) in schema.gas().iter().enumerate() {
            let mut flagged: BTreeSet<SourceId> = BTreeSet::new();
            for source in ga.sources() {
                if !selected.contains(&source) && flagged.insert(source) {
                    out.push(AuditViolation::SchemaSourceOutsideSelection { ga_index, source });
                }
            }
        }
    }

    /// QEF values in `[0, 1]`, weights finite/non-negative and on the
    /// simplex, `Q(S)` equal to the weighted sum and itself in `[0, 1]`.
    fn check_quality(&self, facts: &SolutionFacts<'_>, out: &mut Vec<AuditViolation>) {
        let mut weight_sum = 0.0;
        let mut recomputed = 0.0;
        for (name, weight, value) in facts.qef_breakdown {
            if !value.is_finite() || !(-VALUE_EPS..=1.0 + VALUE_EPS).contains(value) {
                out.push(AuditViolation::QefOutOfRange {
                    name: name.clone(),
                    value: *value,
                });
            }
            if !weight.is_finite() || *weight < 0.0 {
                out.push(AuditViolation::WeightOutOfRange {
                    name: name.clone(),
                    weight: *weight,
                });
            }
            weight_sum += weight;
            recomputed += weight * value;
        }
        if !facts.qef_breakdown.is_empty() && (weight_sum - 1.0).abs() > TOLERANCE {
            out.push(AuditViolation::WeightsOffSimplex { sum: weight_sum });
        }
        if !facts.qef_breakdown.is_empty()
            && ((facts.overall_quality - recomputed).abs() > TOLERANCE
                || facts.overall_quality.is_nan() != recomputed.is_nan())
        {
            out.push(AuditViolation::QualityMismatch {
                reported: facts.overall_quality,
                recomputed,
            });
        }
        let q = facts.overall_quality;
        if !q.is_finite() || !(-TOLERANCE..=1.0 + TOLERANCE).contains(&q) {
            out.push(AuditViolation::QualityOutOfRange { value: q });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mube_schema::{AttrId, GlobalAttribute, SourceBuilder};

    fn a(s: u32, j: u32) -> AttrId {
        AttrId::new(SourceId(s), j)
    }

    fn ga(attrs: &[(u32, u32)]) -> GlobalAttribute {
        GlobalAttribute::new(attrs.iter().map(|&(s, j)| a(s, j))).expect("valid test GA")
    }

    fn universe() -> Universe {
        let mut u = Universe::new();
        for name in ["s0", "s1", "s2"] {
            u.add_source(SourceBuilder::new(name).attributes(["x", "y"]))
                .expect("test universe");
        }
        u
    }

    fn breakdown() -> Vec<(String, f64, f64)> {
        vec![
            ("matching".to_owned(), 0.5, 0.8),
            ("cardinality".to_owned(), 0.5, 0.6),
        ]
    }

    #[test]
    fn clean_solution_passes() {
        let u = universe();
        let schema = MediatedSchema::new([ga(&[(0, 0), (1, 0)])]);
        let facts = SolutionFacts {
            selected: &[SourceId(0), SourceId(1)],
            schema: &schema,
            qef_breakdown: &breakdown(),
            overall_quality: 0.7,
        };
        let report = SolutionAuditor::new(&u).max_sources(2).audit(&facts);
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn budget_and_duplicates_detected() {
        let u = universe();
        let schema = MediatedSchema::empty();
        let facts = SolutionFacts {
            selected: &[SourceId(0), SourceId(0), SourceId(7)],
            schema: &schema,
            qef_breakdown: &[],
            overall_quality: 0.0,
        };
        let report = SolutionAuditor::new(&u).max_sources(2).audit(&facts);
        assert!(report.has_code("selection.duplicate-source"));
        assert!(report.has_code("selection.unknown-source"));
        assert!(report.has_code("selection.too-many-sources"));
    }

    #[test]
    fn missing_required_source_detected() {
        let u = universe();
        let mut c = Constraints::none();
        c.require_ga(ga(&[(2, 0)]));
        let schema = MediatedSchema::new([ga(&[(0, 0), (1, 0)])]);
        let facts = SolutionFacts {
            selected: &[SourceId(0), SourceId(1)],
            schema: &schema,
            qef_breakdown: &breakdown(),
            overall_quality: 0.7,
        };
        let report = SolutionAuditor::new(&u).constraints(&c).audit(&facts);
        assert!(report.has_code("selection.missing-required-source"));
        // The constraint GA is also not subsumed by the schema.
        assert!(report.has_code("constraint.ga-not-subsumed"));
    }

    #[test]
    fn schema_outside_selection_detected() {
        let u = universe();
        let schema = MediatedSchema::new([ga(&[(0, 0), (2, 0)])]);
        let facts = SolutionFacts {
            selected: &[SourceId(0)],
            schema: &schema,
            qef_breakdown: &breakdown(),
            overall_quality: 0.7,
        };
        let report = SolutionAuditor::new(&u).audit(&facts);
        assert!(report.has_code("schema.source-outside-selection"));
    }

    #[test]
    fn quality_arithmetic_checked() {
        let u = universe();
        let schema = MediatedSchema::new([ga(&[(0, 0), (1, 0)])]);
        let bad_breakdown = vec![
            ("matching".to_owned(), 0.5, 1.2),
            ("cardinality".to_owned(), 0.7, 0.5),
        ];
        let facts = SolutionFacts {
            selected: &[SourceId(0), SourceId(1)],
            schema: &schema,
            qef_breakdown: &bad_breakdown,
            overall_quality: 0.3,
        };
        let report = SolutionAuditor::new(&u).audit(&facts);
        assert!(report.has_code("qef.out-of-range"));
        assert!(report.has_code("weights.off-simplex"));
        assert!(report.has_code("quality.mismatch"));
    }

    #[test]
    fn nan_quality_detected() {
        let u = universe();
        let schema = MediatedSchema::new([ga(&[(0, 0), (1, 0)])]);
        let facts = SolutionFacts {
            selected: &[SourceId(0), SourceId(1)],
            schema: &schema,
            qef_breakdown: &[],
            overall_quality: f64::NAN,
        };
        let report = SolutionAuditor::new(&u).audit(&facts);
        assert!(report.has_code("quality.out-of-range"));
    }
}
