//! Statistical samplers: Zipf-distributed cardinalities and normal MTTF.

use rand::Rng;

/// Samples cardinalities "ranging from 10,000 to 1,000,000 that follow a
/// Zipf distribution": a discrete Zipf over logarithmically spaced bucket
/// values, so most sources are small and a heavy tail is large.
#[derive(Debug, Clone)]
pub struct ZipfCardinality {
    values: Vec<u64>,
    /// Cumulative probabilities per bucket.
    cdf: Vec<f64>,
}

impl ZipfCardinality {
    /// Buckets between `min` and `max` (inclusive, log-spaced), with
    /// P(bucket j) ∝ 1/(j+1)^exponent — bucket 0 holds the smallest value.
    ///
    /// # Panics
    /// Panics if `min == 0`, `min > max`, or `buckets == 0`.
    pub fn new(min: u64, max: u64, buckets: usize, exponent: f64) -> Self {
        assert!(min > 0 && min <= max && buckets > 0);
        let values: Vec<u64> = (0..buckets)
            .map(|j| {
                if buckets == 1 {
                    min
                } else {
                    let t = j as f64 / (buckets - 1) as f64;
                    ((min as f64) * ((max as f64) / (min as f64)).powf(t)).round() as u64
                }
            })
            .collect();
        let mass: Vec<f64> = (0..buckets)
            .map(|j| 1.0 / ((j + 1) as f64).powf(exponent))
            .collect();
        let total: f64 = mass.iter().sum();
        let mut acc = 0.0;
        let cdf = mass
            .iter()
            .map(|m| {
                acc += m / total;
                acc
            })
            .collect();
        Self { values, cdf }
    }

    /// The paper's configuration: 10,000 to 1,000,000 tuples, 20 buckets,
    /// exponent 1.0.
    pub fn paper_defaults() -> Self {
        Self::new(10_000, 1_000_000, 20, 1.0)
    }

    /// Draws one cardinality.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> u64 {
        let u: f64 = rng.gen();
        let idx = self
            .cdf
            .iter()
            .position(|&c| u <= c)
            .unwrap_or(self.cdf.len() - 1);
        self.values[idx]
    }
}

/// Samples from `Normal(mean, std)` via Box–Muller, clamped below at
/// `floor`. Used for the MTTF characteristic: "mean 100 days and standard
/// deviation 40".
#[derive(Debug, Clone, Copy)]
pub struct ClampedNormal {
    /// Distribution mean.
    pub mean: f64,
    /// Distribution standard deviation.
    pub std: f64,
    /// Values below this are clamped up (characteristics must be ≥ 0).
    pub floor: f64,
}

impl ClampedNormal {
    /// The paper's MTTF distribution.
    pub fn paper_mttf() -> Self {
        Self {
            mean: 100.0,
            std: 40.0,
            floor: 1.0,
        }
    }

    /// Draws one value.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> f64 {
        // Box–Muller transform.
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        (self.mean + self.std * z).max(self.floor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zipf_values_within_bounds() {
        let z = ZipfCardinality::paper_defaults();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let c = z.sample(&mut rng);
            assert!((10_000..=1_000_000).contains(&c), "got {c}");
        }
    }

    #[test]
    fn zipf_is_skewed_toward_small() {
        let z = ZipfCardinality::paper_defaults();
        let mut rng = StdRng::seed_from_u64(2);
        let draws: Vec<u64> = (0..2000).map(|_| z.sample(&mut rng)).collect();
        let small = draws.iter().filter(|&&c| c < 100_000).count();
        let large = draws.iter().filter(|&&c| c > 500_000).count();
        assert!(
            small > large * 2,
            "expected skew toward small: {small} small vs {large} large"
        );
    }

    #[test]
    fn zipf_single_bucket() {
        let z = ZipfCardinality::new(5, 5, 1, 1.0);
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(z.sample(&mut rng), 5);
    }

    #[test]
    #[should_panic]
    fn zipf_rejects_zero_min() {
        ZipfCardinality::new(0, 10, 4, 1.0);
    }

    #[test]
    fn normal_moments_approximately_right() {
        let n = ClampedNormal {
            mean: 100.0,
            std: 40.0,
            floor: f64::MIN,
        };
        let mut rng = StdRng::seed_from_u64(4);
        let draws: Vec<f64> = (0..20_000).map(|_| n.sample(&mut rng)).collect();
        let mean = draws.iter().sum::<f64>() / draws.len() as f64;
        let var = draws.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / draws.len() as f64;
        assert!((mean - 100.0).abs() < 2.0, "mean {mean}");
        assert!((var.sqrt() - 40.0).abs() < 2.0, "std {}", var.sqrt());
    }

    #[test]
    fn normal_respects_floor() {
        let n = ClampedNormal {
            mean: 0.0,
            std: 50.0,
            floor: 1.0,
        };
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..1000 {
            assert!(n.sample(&mut rng) >= 1.0);
        }
    }
}
