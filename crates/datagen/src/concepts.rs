//! The Books-domain concept inventory.
//!
//! The paper: "we manually counted the number of distinct concepts in the
//! BAMM schemas that we use. There are 14 distinct concepts in these
//! schemas, so there can be up to 14 true GAs in the solution." Each concept
//! here carries the surface forms (aliases) under which Books-domain query
//! interfaces expose it; the first alias is the canonical, most common one.

/// Identifier of a concept: an index into [`CONCEPTS`].
// Derived PartialOrd delegates to the derived total Ord; the clippy ban
// targets hand-written partial float comparisons.
#[allow(clippy::disallowed_methods)]
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ConceptId(pub u8);

/// A domain concept and its surface forms across Web query interfaces.
#[derive(Debug, Clone, Copy)]
pub struct Concept {
    /// Stable concept name (not used as an attribute label).
    pub name: &'static str,
    /// Surface forms; index 0 is canonical and most frequent.
    pub aliases: &'static [&'static str],
}

/// Number of distinct concepts — matches the paper's manually counted 14.
pub const NUM_CONCEPTS: usize = 14;

/// The Books-domain concepts. Alias lists intentionally mix (a) identical
/// names repeated across sites (which cluster at the paper's strict
/// θ = 0.75 3-gram Jaccard threshold), (b) long near-variants that clear
/// the threshold (e.g. "publication year" / "publication years"), and
/// (c) genuinely divergent forms that only a GA constraint can bridge
/// (e.g. "author" vs "writer") — the mix the bridging-effect experiments
/// need.
pub const CONCEPTS: [Concept; NUM_CONCEPTS] = [
    Concept {
        name: "title",
        aliases: &["title", "book title", "book titles", "title of book"],
    },
    Concept {
        name: "author",
        aliases: &["author", "author name", "author names", "writer"],
    },
    Concept {
        name: "isbn",
        aliases: &["isbn", "isbn number", "isbn numbers"],
    },
    Concept {
        name: "keyword",
        aliases: &["keyword", "keywords", "search keywords", "search keyword"],
    },
    Concept {
        name: "publisher",
        aliases: &[
            "publisher",
            "publisher name",
            "publisher names",
            "publishing house",
        ],
    },
    Concept {
        name: "price",
        aliases: &["price", "price range", "price ranges", "maximum price"],
    },
    Concept {
        name: "format",
        aliases: &["format", "binding", "binding type", "binding types"],
    },
    Concept {
        name: "subject",
        aliases: &[
            "subject",
            "subject category",
            "subject categories",
            "category",
        ],
    },
    Concept {
        name: "publication year",
        aliases: &[
            "publication year",
            "publication years",
            "publication date",
            "year published",
        ],
    },
    Concept {
        name: "edition",
        aliases: &["edition", "edition number", "edition numbers"],
    },
    Concept {
        name: "language",
        aliases: &["language", "book language", "book languages"],
    },
    Concept {
        name: "condition",
        aliases: &["condition", "book condition", "book conditions"],
    },
    Concept {
        name: "reader age",
        aliases: &["reader age", "reader ages", "age range", "age level"],
    },
    Concept {
        name: "seller",
        aliases: &["seller", "seller name", "seller names", "bookstore"],
    },
];

/// Looks up the concept expressing `attribute_name`, if it is a known
/// surface form (exact match on the raw alias string).
pub fn concept_of_name(attribute_name: &str) -> Option<ConceptId> {
    CONCEPTS.iter().enumerate().find_map(|(i, c)| {
        c.aliases
            .contains(&attribute_name)
            .then_some(ConceptId(i as u8))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn fourteen_concepts() {
        assert_eq!(CONCEPTS.len(), 14);
        assert_eq!(NUM_CONCEPTS, 14);
    }

    #[test]
    fn aliases_are_globally_unique() {
        let mut seen = BTreeSet::new();
        for c in &CONCEPTS {
            assert!(!c.aliases.is_empty());
            for a in c.aliases {
                assert!(seen.insert(*a), "alias {a:?} appears in two concepts");
            }
        }
    }

    #[test]
    fn lookup_by_alias() {
        assert_eq!(concept_of_name("author"), Some(ConceptId(1)));
        assert_eq!(concept_of_name("writer"), Some(ConceptId(1)));
        assert_eq!(concept_of_name("bookstore"), Some(ConceptId(13)));
        assert_eq!(concept_of_name("voltage"), None);
    }

    #[test]
    fn each_concept_has_a_threshold_clearing_pair() {
        // Every concept needs at least one alias pair that clusters at the
        // paper's θ = 0.75 under 3-gram Jaccard — otherwise the concept
        // could only ever be found via identical names. Identical names
        // across sources also count (every alias can repeat), so this test
        // documents rather than gates: check the canonical alias is at
        // least 4 characters so its 3-gram set is non-trivial.
        for c in &CONCEPTS {
            assert!(c.aliases[0].len() >= 4, "{} canonical too short", c.name);
        }
    }
}
