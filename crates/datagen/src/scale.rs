//! Large-universe generation mode: 10k–100k schema-only sources with
//! heavy-tailed sizes and near-duplicate attribute names.
//!
//! The Section 7.1 generator ([`crate::UniverseConfig`]) reproduces the
//! paper's 700-source Books experiment: 50 base schemas, perturbed copies,
//! full tuple synthesis. That shape is wrong for stressing the *sparse
//! similarity* layer at Internet scale — its attribute-name vocabulary is
//! tiny (everything collapses to a few hundred distinct names, so blocking
//! is trivial) and tuple synthesis dominates the runtime.
//!
//! This module generates what deep-web surveys actually observe at scale:
//!
//! * **Heavy-tailed source sizes** — attribute counts follow a Zipf law
//!   (most query interfaces expose 2–5 fields; a few expose dozens).
//! * **Zipf concept popularity** — a large synthetic concept vocabulary
//!   where a handful of concepts ("title"-like) appear in most sources and
//!   a long tail appears in a few.
//! * **Near-duplicate names** — per-concept surface variants (separator
//!   swaps, pluralization, suffixes, abbreviations) shared across sources,
//!   plus rare character-level typos that are almost unique. These are the
//!   realistic collision patterns blocking must survive: near-duplicates
//!   share most grams (candidates that must be scored), typos share few
//!   (candidates the threshold tier prunes).
//! * **Off-domain noise** — pseudo-word attribute names that mostly share
//!   no grams with anything (the implicit-zero mass of the sparse matrix).
//!
//! Generation is schema-only (no tuple pools, no PCSA sketches): at 100k
//! sources the point is the Match path, and the optimizer's data-dependent
//! QEFs degrade to the paper's uncooperative mode exactly as documented.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use mube_schema::attribute::normalize_name;
use mube_schema::{SourceBuilder, SourceId, Universe};

use crate::sampler::{ClampedNormal, ZipfCardinality};

/// Configuration of one large synthetic universe.
#[derive(Debug, Clone)]
pub struct ScaleConfig {
    /// Number of sources to generate.
    pub num_sources: usize,
    /// Experiment seed driving every sampling decision.
    pub seed: u64,
    /// Size of the synthetic concept vocabulary (distinct canonical
    /// attribute names available to draw from).
    pub concepts: usize,
    /// Zipf exponent over concept popularity: concept `j` is drawn with
    /// probability ∝ `1/(j+1)^concept_exponent`.
    pub concept_exponent: f64,
    /// Largest attribute count a source may have.
    pub max_attrs: usize,
    /// Zipf exponent over source sizes: `k` attributes with probability
    /// ∝ `1/k^attr_exponent` for `k` in `1..=max_attrs`.
    pub attr_exponent: f64,
    /// Probability an attribute uses a shared near-duplicate variant of its
    /// concept's canonical name instead of the canonical itself.
    pub near_dup_prob: f64,
    /// Probability a near-duplicate additionally receives a character-level
    /// typo (drop/duplicate/swap), making it almost unique.
    pub typo_prob: f64,
    /// Probability an attribute is off-domain noise with a pseudo-word name.
    pub noise_prob: f64,
}

impl ScaleConfig {
    /// A blocking-stress default at a given universe size and seed:
    /// vocabulary scaled to `num_sources / 8` concepts (min 64), sizes 1–40
    /// with a 1.6 tail, 30% near-duplicates of which 10% typo'd, 10% noise.
    pub fn blocking_stress(num_sources: usize, seed: u64) -> Self {
        Self {
            num_sources,
            seed,
            concepts: (num_sources / 8).max(64),
            concept_exponent: 1.0,
            max_attrs: 40,
            attr_exponent: 1.6,
            near_dup_prob: 0.3,
            typo_prob: 0.1,
            noise_prob: 0.1,
        }
    }
}

/// Shape counters of a generated scale universe.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScaleStats {
    /// Total attributes across all sources.
    pub total_attrs: usize,
    /// Distinct normalized attribute names — the row count of the sparse
    /// similarity build.
    pub distinct_names: usize,
    /// Largest per-source attribute count actually drawn.
    pub max_source_attrs: usize,
}

/// A generated scale universe: schema-only sources plus shape counters.
#[derive(Debug)]
pub struct ScaleUniverse {
    /// The sources (cardinality and MTTF set, no sketches).
    pub universe: Universe,
    /// Shape counters.
    pub stats: ScaleStats,
}

/// Discrete Zipf sampler over `0..n`: value `j` with probability
/// ∝ `1/(j+1)^exponent`, drawn by binary search on the precomputed CDF.
struct ZipfIndex {
    cdf: Vec<f64>,
}

impl ZipfIndex {
    fn new(n: usize, exponent: f64) -> Self {
        let mass: Vec<f64> = (0..n.max(1))
            .map(|j| 1.0 / ((j + 1) as f64).powf(exponent))
            .collect();
        let total: f64 = mass.iter().sum();
        let mut acc = 0.0;
        let cdf = mass
            .iter()
            .map(|m| {
                acc += m / total;
                acc
            })
            .collect();
        Self { cdf }
    }

    fn sample(&self, rng: &mut StdRng) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

/// Word pools for canonical concept names. Two-word combinations give
/// `32 × 64 = 2048` base names; concepts beyond that append a numeric
/// disambiguator (rare at the configured vocabulary sizes).
const HEAD_WORDS: [&str; 32] = [
    "order", "item", "product", "customer", "account", "payment", "shipping", "billing", "user",
    "session", "event", "ticket", "review", "rating", "category", "vendor", "invoice", "contact",
    "address", "member", "listing", "auction", "offer", "search", "result", "page", "catalog",
    "store", "brand", "model", "serial", "release",
];
const TAIL_WORDS: [&str; 64] = [
    "id",
    "name",
    "date",
    "time",
    "type",
    "status",
    "code",
    "number",
    "count",
    "total",
    "price",
    "cost",
    "value",
    "amount",
    "currency",
    "country",
    "city",
    "state",
    "zip",
    "phone",
    "email",
    "url",
    "title",
    "description",
    "comment",
    "note",
    "tag",
    "label",
    "group",
    "level",
    "rank",
    "score",
    "weight",
    "height",
    "width",
    "length",
    "size",
    "color",
    "format",
    "language",
    "region",
    "source",
    "target",
    "owner",
    "creator",
    "editor",
    "author",
    "publisher",
    "year",
    "month",
    "day",
    "quarter",
    "week",
    "start",
    "end",
    "duration",
    "limit",
    "offset",
    "index",
    "key",
    "hash",
    "flag",
    "version",
    "revision",
];

/// Canonical surface form of concept `c`.
fn canonical_name(c: usize) -> String {
    let head = HEAD_WORDS[c % HEAD_WORDS.len()];
    let tail = TAIL_WORDS[(c / HEAD_WORDS.len()) % TAIL_WORDS.len()];
    let round = c / (HEAD_WORDS.len() * TAIL_WORDS.len());
    if round == 0 {
        format!("{head} {tail}")
    } else {
        format!("{head} {tail} {round}")
    }
}

/// Shared near-duplicate variant `v` (1..=4) of a canonical name — the
/// transforms real query interfaces apply: separator style, pluralization,
/// qualifier suffix, abbreviation. Deterministic in `(name, v)`, so the
/// same variant recurs across sources and clusters with its siblings.
fn variant_name(canonical: &str, v: usize) -> String {
    match v % 4 {
        0 => canonical.replace(' ', "_"),
        1 => format!("{canonical}s"),
        2 => format!("the {canonical}"),
        _ => {
            // Abbreviate the first word to its first three characters.
            match canonical.split_once(' ') {
                Some((head, rest)) => {
                    let cut = head.chars().take(3).collect::<String>();
                    format!("{cut} {rest}")
                }
                None => canonical.chars().take(3).collect(),
            }
        }
    }
}

/// Character-level typo: drop, duplicate, or swap at an rng-chosen
/// position. Operates on chars, so multi-byte names stay valid.
fn typo(name: &str, rng: &mut StdRng) -> String {
    let chars: Vec<char> = name.chars().collect();
    if chars.len() < 2 {
        return name.to_string();
    }
    let pos = rng.gen_range(0..chars.len() - 1);
    let mut out: Vec<char> = Vec::with_capacity(chars.len() + 1);
    match rng.gen_range(0..3u32) {
        0 => {
            // Drop.
            out.extend(
                chars
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| *i != pos)
                    .map(|(_, c)| c),
            );
        }
        1 => {
            // Duplicate.
            out.extend(&chars[..=pos]);
            out.push(chars[pos]);
            out.extend(&chars[pos + 1..]);
        }
        _ => {
            // Swap with the next char.
            out.extend(&chars[..pos]);
            out.push(chars[pos + 1]);
            out.push(chars[pos]);
            out.extend(&chars[pos + 2..]);
        }
    }
    out.into_iter().collect()
}

/// A pseudo-word noise name: 6–12 random lowercase letters, optionally two
/// words. Mostly gram-disjoint from the concept vocabulary.
fn noise_name(rng: &mut StdRng) -> String {
    let word = |rng: &mut StdRng| {
        let len = rng.gen_range(6..13usize);
        (0..len)
            .map(|_| char::from(b'a' + rng.gen_range(0..26u8)))
            .collect::<String>()
    };
    if rng.gen::<f64>() < 0.3 {
        let (a, b) = (word(rng), word(rng));
        format!("{a} {b}")
    } else {
        word(rng)
    }
}

impl ScaleConfig {
    /// Builds the universe.
    pub fn generate(&self) -> ScaleUniverse {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let concept_zipf = ZipfIndex::new(self.concepts, self.concept_exponent);
        let size_zipf = ZipfIndex::new(self.max_attrs.max(1), self.attr_exponent);
        let cardinality = ZipfCardinality::new(10_000, 1_000_000, 20, 1.0);
        let mttf = ClampedNormal {
            mean: 100.0,
            std: 40.0,
            floor: 1.0,
        };

        let mut universe = Universe::new();
        let mut stats = ScaleStats::default();
        let mut distinct: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
        let mut names: Vec<String> = Vec::new();
        for i in 0..self.num_sources {
            let k = size_zipf.sample(&mut rng) + 1;
            names.clear();
            for _ in 0..k {
                let name = if rng.gen::<f64>() < self.noise_prob {
                    noise_name(&mut rng)
                } else {
                    let c = concept_zipf.sample(&mut rng);
                    let canonical = canonical_name(c);
                    if rng.gen::<f64>() < self.near_dup_prob {
                        let v = variant_name(&canonical, rng.gen_range(0..4usize));
                        if rng.gen::<f64>() < self.typo_prob {
                            typo(&v, &mut rng)
                        } else {
                            v
                        }
                    } else {
                        canonical
                    }
                };
                // A schema lists each field once: resampling duplicates
                // would skew the concept distribution, so just drop them
                // (source sizes stay heavy-tailed either way).
                if !names.contains(&name) {
                    names.push(name);
                }
            }
            stats.total_attrs += names.len();
            stats.max_source_attrs = stats.max_source_attrs.max(names.len());
            for n in &names {
                distinct.insert(normalize_name(n));
            }
            let builder = SourceBuilder::new(format!("scale-{i}"))
                .attributes(names.iter().cloned())
                .cardinality(cardinality.sample(&mut rng))
                .characteristic("mttf", mttf.sample(&mut rng));
            let id = universe
                .add_source(builder)
                .expect("generated schemas are well-formed");
            debug_assert_eq!(id, SourceId(i as u32));
        }
        stats.distinct_names = distinct.len();
        ScaleUniverse { universe, stats }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_size_with_heavy_tail() {
        let g = ScaleConfig::blocking_stress(400, 7).generate();
        assert_eq!(g.universe.len(), 400);
        assert_eq!(
            g.stats.total_attrs,
            g.universe
                .sources()
                .iter()
                .map(|s| s.attributes().len())
                .sum::<usize>()
        );
        // Heavy tail: the largest source is far above the median size.
        let mut sizes: Vec<usize> = g
            .universe
            .sources()
            .iter()
            .map(|s| s.attributes().len())
            .collect();
        sizes.sort_unstable();
        let median = sizes[sizes.len() / 2];
        assert!(median <= 4, "median source size {median} not heavy-tailed");
        assert!(g.stats.max_source_attrs >= 10, "no large sources drawn");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = ScaleConfig::blocking_stress(150, 5).generate();
        let b = ScaleConfig::blocking_stress(150, 5).generate();
        assert_eq!(a.universe, b.universe);
        assert_eq!(a.stats, b.stats);
        let c = ScaleConfig::blocking_stress(150, 6).generate();
        assert_ne!(a.universe, c.universe);
    }

    #[test]
    fn vocabulary_grows_sublinearly_but_contains_near_dups() {
        let g = ScaleConfig::blocking_stress(1000, 11).generate();
        // Far fewer distinct names than attributes (heavy concept reuse)...
        assert!(g.stats.distinct_names < g.stats.total_attrs / 2);
        // ...but far more than the concept count (variants, typos, noise).
        assert!(g.stats.distinct_names > 125);
    }

    #[test]
    fn sources_carry_cardinality_and_mttf() {
        let g = ScaleConfig::blocking_stress(50, 3).generate();
        for s in g.universe.sources() {
            assert!((10_000..=1_000_000).contains(&s.cardinality()));
            assert!(s.characteristic("mttf").unwrap() >= 1.0);
            assert!(!s.attributes().is_empty());
        }
    }

    #[test]
    fn variants_and_typos_are_well_formed() {
        let mut rng = StdRng::seed_from_u64(9);
        for c in [0usize, 1, 31, 32, 2047, 2048, 5000] {
            let canon = canonical_name(c);
            assert!(!canon.is_empty());
            for v in 0..4 {
                let var = variant_name(&canon, v);
                assert!(!var.is_empty());
                assert_ne!(var, canon, "variant {v} of {canon:?} is the canonical");
                let t = typo(&var, &mut rng);
                assert!(!t.is_empty());
            }
        }
    }

    #[test]
    fn canonical_names_are_distinct_per_concept() {
        let mut seen = std::collections::BTreeSet::new();
        for c in 0..4500 {
            assert!(seen.insert(canonical_name(c)), "concept {c} collides");
        }
    }
}
