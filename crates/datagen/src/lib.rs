//! Synthetic experimental universe for µBE, reproducing Section 7.1.
//!
//! The paper generated "descriptions and data for 700 synthetic data
//! sources" from the 50 Books-domain schemas of the BAMM/UIUC Web
//! integration repository. The BAMM repository is no longer distributed, so
//! this crate embeds its own 50 Books-domain query-interface schemas built
//! from exactly **14 underlying concepts** — the number of distinct concepts
//! the authors counted manually in BAMM's Books schemas — with per-site
//! naming variation (see [`concepts`] and [`repository`]).
//!
//! Everything else follows the paper's recipe directly:
//!
//! * the universe consists of the 50 base schemas plus *perturbed copies* —
//!   attributes are added, removed, or replaced with words unrelated to the
//!   Books domain, under a probability distribution that retains the
//!   domain's character ([`perturb`]);
//! * per-source cardinalities range from 10,000 to 1,000,000 tuples
//!   following a Zipf distribution ([`sampler`]);
//! * tuples are drawn from a pool of 4,000,000 distinct tuples, half
//!   labeled *General*, half *Specialty*; half the sources draw only from
//!   the General pool, the other half mix in a small number of Specialty
//!   tuples ([`tuples`]);
//! * each source has a mean-time-to-failure characteristic drawn from a
//!   normal distribution with mean 100 days and standard deviation 40
//!   ([`sampler`]);
//! * each source cooperates by computing a PCSA hash signature of its
//!   tuples ([`tuples`]).
//!
//! The generator also returns the [`GroundTruth`]: which concept every
//! attribute expresses (or none, for noise attributes), which is what the
//! Table 1 scoring ("true GAs selected / attributes in true GAs / true GAs
//! missed / false GAs") is computed from.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod concepts;
pub mod generator;
pub mod ground_truth;
pub mod offdomain;
pub mod perturb;
pub mod repository;
pub mod sampler;
pub mod scale;
pub mod tuples;

pub use concepts::{ConceptId, CONCEPTS, NUM_CONCEPTS};
pub use generator::{GeneratedUniverse, UniverseConfig};
pub use ground_truth::{ConceptOutcome, GaScore, GroundTruth};
pub use perturb::PerturbConfig;
pub use scale::{ScaleConfig, ScaleStats, ScaleUniverse};
pub use tuples::PoolConfig;
