//! Tuple pools and per-source data synthesis.
//!
//! Section 7.1: "The data tuples themselves are chosen randomly from a set
//! of 4,000,000 distinct tuples consisting of random words. Half of our
//! tuples are labeled as General and half are labeled as Specialty. Half
//! the data sources got all their tuples from the General pool. For the
//! other half, we chose a small number of tuples from the Specialty pool
//! and the rest from the General pool."
//!
//! Tuples are abstract 64-bit identifiers: id `0 .. general` is the General
//! pool, `general .. general + specialty` the Specialty pool. Identifiers
//! feed the PCSA hasher exactly as materialized tuples would (the sketch
//! hashes whatever bytes/ids it is given), so nothing about coverage or
//! redundancy behaviour depends on tuple *content*.
//!
//! A source's tuple set is sampled **without replacement** by walking the
//! pool with a random start and a random odd stride (pool sizes are even,
//! so any odd stride is coprime and the walk hits distinct ids) — this
//! makes the source's distinct-tuple count equal its nominal cardinality
//! without materializing or shuffling millions of ids.

use rand::Rng;

use mube_pcsa::{PcsaSketch, TupleHasher};

/// Pool sizes and the specialty mixing fraction.
#[derive(Debug, Clone, Copy)]
pub struct PoolConfig {
    /// Number of General tuples.
    pub general: u64,
    /// Number of Specialty tuples.
    pub specialty: u64,
    /// For mixed sources: fraction of the source's tuples drawn from the
    /// Specialty pool ("a small number").
    pub specialty_fraction: f64,
}

impl Default for PoolConfig {
    /// The paper's pools: 2M General + 2M Specialty, 10% specialty mix.
    fn default() -> Self {
        Self {
            general: 2_000_000,
            specialty: 2_000_000,
            specialty_fraction: 0.10,
        }
    }
}

impl PoolConfig {
    /// A small configuration for fast tests: 20k + 20k tuples.
    pub fn small() -> Self {
        Self {
            general: 20_000,
            specialty: 20_000,
            specialty_fraction: 0.10,
        }
    }

    /// Total distinct tuples across both pools.
    pub fn total(&self) -> u64 {
        self.general + self.specialty
    }
}

fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

/// A coprime-stride walk over `0..size`, yielding `count` distinct offsets.
fn stride_walk<R: Rng>(size: u64, count: u64, rng: &mut R) -> impl Iterator<Item = u64> {
    debug_assert!(count <= size);
    let start = rng.gen_range(0..size);
    // Rejection-sample a stride coprime with the pool size so the walk is a
    // full cycle (distinct offsets). Coprime strides are dense (≥ φ(n)/n ≳
    // 0.2 for any n), so this terminates in a handful of draws.
    let stride = loop {
        let candidate = rng.gen_range(1..size.max(2));
        if gcd(candidate, size) == 1 {
            break candidate;
        }
    };
    (0..count).map(move |i| (start + i.wrapping_mul(stride)) % size)
}

/// Synthesizes one source's tuple set directly into a PCSA sketch.
///
/// `mixed` selects the Specialty-mixing behaviour; `cardinality` is the
/// number of (distinct) tuples the source holds. Returns the sketch.
///
/// # Panics
/// Panics if the requested cardinality exceeds the available pools.
pub fn build_source_sketch<R: Rng>(
    pool: &PoolConfig,
    cardinality: u64,
    mixed: bool,
    hasher: TupleHasher,
    num_maps: usize,
    rng: &mut R,
) -> PcsaSketch {
    let mut sketch = PcsaSketch::new(num_maps, hasher);
    let spec_count = if mixed {
        ((cardinality as f64 * pool.specialty_fraction) as u64)
            .min(pool.specialty)
            .max(u64::from(cardinality > 0))
    } else {
        0
    };
    let gen_count = cardinality - spec_count.min(cardinality);
    assert!(
        gen_count <= pool.general,
        "cardinality {cardinality} exceeds General pool {}",
        pool.general
    );
    for offset in stride_walk(pool.general, gen_count, rng) {
        sketch.insert_u64(offset);
    }
    if spec_count > 0 {
        for offset in stride_walk(pool.specialty, spec_count, rng) {
            sketch.insert_u64(pool.general + offset);
        }
    }
    sketch
}

#[cfg(test)]
// Test-local hash tables: assertions never depend on iteration order,
// and the workspace ban guards production walk order only.
#[allow(clippy::disallowed_types)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashSet;

    #[test]
    fn stride_walk_yields_distinct_offsets() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..20 {
            let ids: Vec<u64> = stride_walk(10_000, 5_000, &mut rng).collect();
            let set: HashSet<u64> = ids.iter().copied().collect();
            assert_eq!(set.len(), ids.len());
            assert!(ids.iter().all(|&i| i < 10_000));
        }
    }

    #[test]
    fn stride_walk_full_pool_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(2);
        let ids: HashSet<u64> = stride_walk(1_000, 1_000, &mut rng).collect();
        assert_eq!(ids.len(), 1_000);
    }

    #[test]
    fn general_only_sources_never_touch_specialty() {
        // Indirect check via sketches: a general-only sketch OR'd with the
        // full General pool's sketch equals the General pool's sketch.
        let pool = PoolConfig::small();
        let hasher = TupleHasher::default();
        let mut rng = StdRng::seed_from_u64(3);
        let source = build_source_sketch(&pool, 5_000, false, hasher, 64, &mut rng);
        let mut general_all = PcsaSketch::new(64, hasher);
        for t in 0..pool.general {
            general_all.insert_u64(t);
        }
        let mut merged = general_all.clone();
        merged.merge(&source);
        assert_eq!(
            merged, general_all,
            "general-only source leaked specialty ids"
        );
    }

    #[test]
    fn mixed_sources_add_specialty_coverage() {
        let pool = PoolConfig::small();
        let hasher = TupleHasher::default();
        let mut rng = StdRng::seed_from_u64(4);
        let mixed = build_source_sketch(&pool, 10_000, true, hasher, 256, &mut rng);
        let general_only = build_source_sketch(&pool, 10_000, false, hasher, 256, &mut rng);
        // Union with the full general pool: the mixed source extends it,
        // the general-only source does not (up to estimation noise — use
        // exact bitmap comparison instead).
        let mut general_all = PcsaSketch::new(256, hasher);
        for t in 0..pool.general {
            general_all.insert_u64(t);
        }
        let mut with_mixed = general_all.clone();
        with_mixed.merge(&mixed);
        assert_ne!(with_mixed, general_all, "mixed source added nothing");
        let mut with_general = general_all.clone();
        with_general.merge(&general_only);
        assert_eq!(with_general, general_all);
    }

    #[test]
    fn sketch_estimate_tracks_cardinality() {
        let pool = PoolConfig::small();
        let mut rng = StdRng::seed_from_u64(5);
        let s = build_source_sketch(&pool, 8_000, true, TupleHasher::default(), 256, &mut rng);
        let est = s.estimate();
        assert!(
            (est - 8_000.0).abs() / 8_000.0 < 0.2,
            "estimate {est} too far from 8000"
        );
    }

    #[test]
    #[should_panic(expected = "exceeds General pool")]
    fn oversized_source_rejected() {
        let pool = PoolConfig::small();
        let mut rng = StdRng::seed_from_u64(6);
        build_source_sketch(&pool, 50_000, false, TupleHasher::default(), 64, &mut rng);
    }

    #[test]
    fn zero_cardinality_gives_empty_sketch() {
        let pool = PoolConfig::small();
        let mut rng = StdRng::seed_from_u64(7);
        let s = build_source_sketch(&pool, 0, false, TupleHasher::default(), 64, &mut rng);
        assert_eq!(s.estimate(), 0.0);
        let s = build_source_sketch(&pool, 0, true, TupleHasher::default(), 64, &mut rng);
        assert_eq!(s.estimate(), 0.0);
    }
}
