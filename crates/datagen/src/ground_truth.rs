//! Ground-truth concept labels and the Table 1 scoring.

use std::collections::{BTreeMap, BTreeSet};

use mube_schema::{AttrId, MediatedSchema, SourceId};

use crate::concepts::{ConceptId, NUM_CONCEPTS};

/// Which concept every generated attribute expresses. Attributes absent
/// from the map are off-domain noise.
#[derive(Debug, Clone, Default)]
pub struct GroundTruth {
    concept_of: BTreeMap<AttrId, ConceptId>,
}

/// Table 1 metrics for one solution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaScore {
    /// "True GAs selected": distinct concepts for which the schema contains
    /// at least one *pure* GA (all attributes of one concept, ≥ 2 attrs).
    pub true_gas: usize,
    /// "Attributes in true GAs": total attributes inside pure GAs.
    pub attrs_in_true_gas: usize,
    /// "True GAs missed": concepts carried by ≥ 2 of the selected sources
    /// under the *same surface form or not* (i.e. discoverable in
    /// principle) but with no pure GA in the schema.
    pub missed: usize,
    /// GAs that mix two concepts, or mix a concept with noise. The paper
    /// reports "µBE never produced false GAs".
    pub false_gas: usize,
    /// GAs consisting entirely of noise attributes. These arise when two
    /// perturbed sources receive the same off-domain word — clustering them
    /// is *correct* matching behaviour (identical names), just not a domain
    /// concept, so they are counted separately from false GAs.
    pub noise_gas: usize,
}

impl GroundTruth {
    /// An empty ground truth.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that `attr` expresses `concept`.
    pub fn record(&mut self, attr: AttrId, concept: ConceptId) {
        self.concept_of.insert(attr, concept);
    }

    /// The concept of an attribute, `None` for noise.
    pub fn concept_of(&self, attr: AttrId) -> Option<ConceptId> {
        self.concept_of.get(&attr).copied()
    }

    /// Number of attributes with ground-truth labels.
    pub fn labeled_attrs(&self) -> usize {
        self.concept_of.len()
    }

    /// Concepts that are *present* in a set of sources: carried by at least
    /// two distinct selected sources (a GA needs two attributes from two
    /// sources to exist).
    pub fn concepts_present<I>(&self, sources: I) -> BTreeSet<ConceptId>
    where
        I: IntoIterator<Item = SourceId>,
    {
        let selected: BTreeSet<SourceId> = sources.into_iter().collect();
        let mut sources_per_concept: BTreeMap<ConceptId, BTreeSet<SourceId>> = BTreeMap::new();
        for (attr, concept) in &self.concept_of {
            if selected.contains(&attr.source) {
                sources_per_concept
                    .entry(*concept)
                    .or_default()
                    .insert(attr.source);
            }
        }
        sources_per_concept
            .into_iter()
            .filter(|(_, srcs)| srcs.len() >= 2)
            .map(|(c, _)| c)
            .collect()
    }

    /// Scores a solution's mediated schema against the ground truth
    /// (Table 1 columns).
    pub fn score<I>(&self, schema: &MediatedSchema, selected_sources: I) -> GaScore
    where
        I: IntoIterator<Item = SourceId>,
    {
        let mut found: BTreeSet<ConceptId> = BTreeSet::new();
        let mut attrs_in_true_gas = 0usize;
        let mut false_gas = 0usize;
        let mut noise_gas = 0usize;
        for ga in schema.gas() {
            let mut concepts: BTreeSet<Option<ConceptId>> = BTreeSet::new();
            for attr in ga.attrs() {
                concepts.insert(self.concept_of(attr));
            }
            if concepts.len() == 1 {
                if concepts.contains(&None) {
                    // Entirely off-domain words (identical-name cluster).
                    noise_gas += 1;
                } else if ga.len() >= 2 {
                    let concept = concepts
                        .into_iter()
                        .next()
                        .flatten()
                        .expect("pure GA has a concept");
                    found.insert(concept);
                    attrs_in_true_gas += ga.len();
                }
                // Pure singleton GAs (user constraints) are neither true
                // (no matching evidence) nor false.
            } else {
                false_gas += 1;
            }
        }
        let present = self.concepts_present(selected_sources);
        let missed = present.difference(&found).count();
        GaScore {
            true_gas: found.len(),
            attrs_in_true_gas,
            missed,
            false_gas,
            noise_gas,
        }
    }

    /// Maximum possible number of true GAs (the paper's 14).
    pub fn max_true_gas(&self) -> usize {
        NUM_CONCEPTS
    }

    /// Per-concept breakdown of a solution: for each concept, whether it is
    /// present in the selected sources, whether a pure GA found it, and how
    /// many of its attributes that GA covers out of those available.
    pub fn concept_report<I>(
        &self,
        schema: &MediatedSchema,
        selected_sources: I,
    ) -> Vec<ConceptOutcome>
    where
        I: IntoIterator<Item = SourceId>,
    {
        let selected: BTreeSet<SourceId> = selected_sources.into_iter().collect();
        let present = self.concepts_present(selected.iter().copied());
        // Available attrs per concept among selected sources.
        let mut available: BTreeMap<ConceptId, usize> = BTreeMap::new();
        for (attr, concept) in &self.concept_of {
            if selected.contains(&attr.source) {
                *available.entry(*concept).or_insert(0) += 1;
            }
        }
        // Covered attrs per concept via pure GAs.
        let mut covered: BTreeMap<ConceptId, usize> = BTreeMap::new();
        for ga in schema.gas() {
            let concepts: BTreeSet<Option<ConceptId>> =
                ga.attrs().map(|a| self.concept_of(a)).collect();
            if concepts.len() == 1 && ga.len() >= 2 {
                if let Some(Some(c)) = concepts.into_iter().next() {
                    *covered.entry(c).or_insert(0) += ga.len();
                }
            }
        }
        (0..NUM_CONCEPTS as u8)
            .map(ConceptId)
            .map(|concept| ConceptOutcome {
                concept,
                name: crate::concepts::CONCEPTS[concept.0 as usize].name,
                present: present.contains(&concept),
                found: covered.contains_key(&concept),
                attrs_covered: covered.get(&concept).copied().unwrap_or(0),
                attrs_available: available.get(&concept).copied().unwrap_or(0),
            })
            .collect()
    }
}

/// Per-concept row of [`GroundTruth::concept_report`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConceptOutcome {
    /// The concept.
    pub concept: ConceptId,
    /// Its stable name.
    pub name: &'static str,
    /// Whether ≥ 2 selected sources carry it (discoverable in principle).
    pub present: bool,
    /// Whether some pure GA found it.
    pub found: bool,
    /// Attributes of this concept inside pure GAs.
    pub attrs_covered: usize,
    /// Attributes of this concept across the selected sources.
    pub attrs_available: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use mube_schema::GlobalAttribute;

    fn attr(s: u32, j: u32) -> AttrId {
        AttrId::new(SourceId(s), j)
    }

    fn truth() -> GroundTruth {
        let mut gt = GroundTruth::new();
        // Concept 0 in sources 0, 1, 2; concept 1 in sources 0, 1;
        // concept 2 only in source 0. Attr (2,1) is noise.
        gt.record(attr(0, 0), ConceptId(0));
        gt.record(attr(1, 0), ConceptId(0));
        gt.record(attr(2, 0), ConceptId(0));
        gt.record(attr(0, 1), ConceptId(1));
        gt.record(attr(1, 1), ConceptId(1));
        gt.record(attr(0, 2), ConceptId(2));
        gt
    }

    fn sel(ids: &[u32]) -> Vec<SourceId> {
        ids.iter().map(|&i| SourceId(i)).collect()
    }

    #[test]
    fn concepts_present_requires_two_sources() {
        let gt = truth();
        let present = gt.concepts_present(sel(&[0, 1, 2]));
        assert!(present.contains(&ConceptId(0)));
        assert!(present.contains(&ConceptId(1)));
        assert!(!present.contains(&ConceptId(2)), "single-source concept");
        let present = gt.concepts_present(sel(&[0]));
        assert!(present.is_empty());
    }

    #[test]
    fn perfect_solution_scores_clean() {
        let gt = truth();
        let m = MediatedSchema::new([
            GlobalAttribute::new([attr(0, 0), attr(1, 0), attr(2, 0)]).unwrap(),
            GlobalAttribute::new([attr(0, 1), attr(1, 1)]).unwrap(),
        ]);
        let score = gt.score(&m, sel(&[0, 1, 2]));
        assert_eq!(score.true_gas, 2);
        assert_eq!(score.attrs_in_true_gas, 5);
        assert_eq!(score.missed, 0);
        assert_eq!(score.false_gas, 0);
    }

    #[test]
    fn missing_concept_counts_as_missed() {
        let gt = truth();
        let m = MediatedSchema::new([GlobalAttribute::new([attr(0, 0), attr(1, 0)]).unwrap()]);
        let score = gt.score(&m, sel(&[0, 1, 2]));
        assert_eq!(score.true_gas, 1);
        assert_eq!(score.missed, 1, "concept 1 present but not found");
    }

    #[test]
    fn mixed_ga_is_false() {
        let gt = truth();
        let m = MediatedSchema::new([
            GlobalAttribute::new([attr(0, 0), attr(1, 1)]).unwrap(), // mixes 0 and 1
        ]);
        let score = gt.score(&m, sel(&[0, 1]));
        assert_eq!(score.false_gas, 1);
        assert_eq!(score.true_gas, 0);
    }

    #[test]
    fn concept_noise_mix_is_false() {
        let gt = truth();
        let m = MediatedSchema::new([
            GlobalAttribute::new([attr(0, 0), attr(2, 1)]).unwrap(), // (2,1) is noise
        ]);
        let score = gt.score(&m, sel(&[0, 2]));
        assert_eq!(score.false_gas, 1);
        assert_eq!(score.noise_gas, 0);
    }

    #[test]
    fn all_noise_ga_is_noise_not_false() {
        let gt = truth();
        let m = MediatedSchema::new([
            GlobalAttribute::new([attr(2, 1), attr(1, 5)]).unwrap(), // both unlabeled
        ]);
        let score = gt.score(&m, sel(&[1, 2]));
        assert_eq!(score.false_gas, 0);
        assert_eq!(score.noise_gas, 1);
        assert_eq!(score.true_gas, 0);
    }

    #[test]
    fn pure_singleton_is_neutral() {
        let gt = truth();
        let m = MediatedSchema::new([GlobalAttribute::new([attr(0, 0)]).unwrap()]);
        let score = gt.score(&m, sel(&[0, 1]));
        assert_eq!(score.true_gas, 0);
        assert_eq!(score.false_gas, 0);
        assert_eq!(score.attrs_in_true_gas, 0);
    }

    #[test]
    fn empty_schema_misses_everything_present() {
        let gt = truth();
        let score = gt.score(&MediatedSchema::empty(), sel(&[0, 1, 2]));
        assert_eq!(score.true_gas, 0);
        assert_eq!(score.missed, 2);
        assert_eq!(score.false_gas, 0);
    }

    #[test]
    fn labeled_attr_count() {
        assert_eq!(truth().labeled_attrs(), 6);
        assert_eq!(truth().max_true_gas(), NUM_CONCEPTS);
    }

    #[test]
    fn concept_report_rows() {
        let gt = truth();
        let m = MediatedSchema::new([
            GlobalAttribute::new([attr(0, 0), attr(1, 0), attr(2, 0)]).unwrap()
        ]);
        let report = gt.concept_report(&m, sel(&[0, 1, 2]));
        assert_eq!(report.len(), NUM_CONCEPTS);
        let c0 = &report[0];
        assert!(c0.present && c0.found);
        assert_eq!(c0.attrs_covered, 3);
        assert_eq!(c0.attrs_available, 3);
        assert_eq!(c0.name, "title");
        let c1 = &report[1];
        assert!(c1.present && !c1.found, "concept 1 present but missed");
        assert_eq!(c1.attrs_covered, 0);
        assert_eq!(c1.attrs_available, 2);
        // Concept 2 only in one source: not present.
        assert!(!report[2].present);
    }

    #[test]
    fn concept_report_ignores_unselected_sources() {
        let gt = truth();
        let report = gt.concept_report(&MediatedSchema::empty(), sel(&[0]));
        assert!(report.iter().all(|c| !c.present));
        assert_eq!(report[0].attrs_available, 1);
    }
}
