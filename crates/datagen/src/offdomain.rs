//! Words unrelated to the Books domain, used by the perturbation model.
//!
//! The paper: "replace attributes from the schema with other attributes
//! whose names we get from a list of words unrelated to the Books domain."

/// Off-domain attribute names. None of these is similar to any concept
/// alias at the matching thresholds the experiments use, so perturbation
/// noise cannot silently form "true-looking" GAs — any GA containing one of
/// these words is a false GA by construction (unless two perturbed sources
/// happen to receive the same noise word, which forms a *noise* GA that the
/// ground-truth scorer counts as false).
pub const OFF_DOMAIN_WORDS: &[&str] = &[
    "voltage",
    "protein",
    "galaxy",
    "tariff",
    "glacier",
    "wingspan",
    "torque",
    "enzyme",
    "aquifer",
    "fuselage",
    "hydraulics",
    "meridian",
    "plankton",
    "quasar",
    "rainfall",
    "sediment",
    "turbine",
    "viscosity",
    "watershed",
    "zoning",
    "amplitude",
    "bandwidth",
    "chlorophyll",
    "dividend",
    "elevation",
    "fertilizer",
    "gearbox",
    "humidity",
    "insulation",
    "jetstream",
    "kilowatt",
    "lumber",
    "magnetism",
    "nitrogen",
    "oscillator",
    "pesticide",
    "quarry",
    "refinery",
    "solstice",
    "topsoil",
    "uranium",
    "ventilation",
    "warranty mileage",
    "xylem",
    "yield strength",
    "zeppelin",
    "asphalt",
    "ballast",
    "condenser",
    "drainage",
    "embankment",
    "flywheel",
    "gypsum",
    "horsepower",
    "irrigation",
    "jackhammer",
    "kerosene",
    "lighthouse",
    "manifold",
    "nebula",
];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::concepts::concept_of_name;
    use std::collections::BTreeSet;

    #[test]
    fn words_are_unique() {
        let set: BTreeSet<_> = OFF_DOMAIN_WORDS.iter().collect();
        assert_eq!(set.len(), OFF_DOMAIN_WORDS.len());
    }

    #[test]
    fn words_are_not_concept_aliases() {
        for w in OFF_DOMAIN_WORDS {
            assert!(
                concept_of_name(w).is_none(),
                "{w:?} collides with a concept"
            );
        }
    }

    #[test]
    fn list_is_large_enough_for_variety() {
        assert!(OFF_DOMAIN_WORDS.len() >= 50);
    }
}
