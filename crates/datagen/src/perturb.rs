//! Schema perturbation: "To generate a perturbed copy of a schema, we add
//! attributes to the schema, remove attributes from the schema, or replace
//! attributes from the schema with other attributes whose names we get from
//! a list of words unrelated to the Books domain. These perturbations follow
//! a probability distribution that allows us to retain some of the
//! characteristics of the original schemas, while at the same time having
//! variability in our schemas."

use rand::seq::SliceRandom;
use rand::Rng;

use crate::concepts::ConceptId;
use crate::offdomain::OFF_DOMAIN_WORDS;
use crate::repository::BaseSchema;

/// Probabilities of the three perturbation operations, applied
/// independently per generated copy.
#[derive(Debug, Clone, Copy)]
pub struct PerturbConfig {
    /// Probability of appending one off-domain attribute (rolled twice, so
    /// up to two additions per copy).
    pub add: f64,
    /// Probability of removing one randomly chosen attribute (never
    /// removes the last attribute).
    pub remove: f64,
    /// Probability of replacing one randomly chosen attribute with an
    /// off-domain word.
    pub replace: f64,
}

impl Default for PerturbConfig {
    /// Moderate perturbation that keeps schemas recognizably in-domain.
    fn default() -> Self {
        Self {
            add: 0.35,
            remove: 0.30,
            replace: 0.20,
        }
    }
}

impl PerturbConfig {
    /// No perturbation: copies are fully conformant to their base schema.
    pub fn none() -> Self {
        Self {
            add: 0.0,
            remove: 0.0,
            replace: 0.0,
        }
    }
}

/// A generated (possibly perturbed) schema: attribute names with their
/// ground-truth concept (`None` = off-domain noise).
#[derive(Debug, Clone)]
pub struct PerturbedSchema {
    /// `(attribute name, concept or noise)` pairs.
    pub attributes: Vec<(String, Option<ConceptId>)>,
    /// Whether any perturbation was actually applied.
    pub perturbed: bool,
}

/// Produces one perturbed copy of `base`.
pub fn perturb<R: Rng>(base: &BaseSchema, config: &PerturbConfig, rng: &mut R) -> PerturbedSchema {
    let mut attributes: Vec<(String, Option<ConceptId>)> = base
        .attributes
        .iter()
        .map(|(n, c)| (n.clone(), Some(*c)))
        .collect();
    let mut perturbed = false;

    // Remove.
    if attributes.len() > 1 && rng.gen::<f64>() < config.remove {
        let idx = rng.gen_range(0..attributes.len());
        attributes.remove(idx);
        perturbed = true;
    }
    // Replace.
    if rng.gen::<f64>() < config.replace {
        let idx = rng.gen_range(0..attributes.len());
        let word = OFF_DOMAIN_WORDS.choose(rng).expect("word list nonempty");
        attributes[idx] = ((*word).to_owned(), None);
        perturbed = true;
    }
    // Add (two independent rolls).
    for _ in 0..2 {
        if rng.gen::<f64>() < config.add {
            let word = OFF_DOMAIN_WORDS.choose(rng).expect("word list nonempty");
            // Avoid duplicate attribute names within one schema.
            if !attributes.iter().any(|(n, _)| n == word) {
                attributes.push(((*word).to_owned(), None));
                perturbed = true;
            }
        }
    }
    PerturbedSchema {
        attributes,
        perturbed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::repository::base_schemas;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn no_perturbation_is_identity() {
        let base = &base_schemas()[0];
        let mut rng = StdRng::seed_from_u64(1);
        let p = perturb(base, &PerturbConfig::none(), &mut rng);
        assert!(!p.perturbed);
        assert_eq!(p.attributes.len(), base.attributes.len());
        for ((n, c), (bn, bc)) in p.attributes.iter().zip(&base.attributes) {
            assert_eq!(n, bn);
            assert_eq!(*c, Some(*bc));
        }
    }

    #[test]
    fn schemas_never_become_empty() {
        let base = &base_schemas()[5];
        let aggressive = PerturbConfig {
            add: 0.0,
            remove: 1.0,
            replace: 0.0,
        };
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..200 {
            let p = perturb(base, &aggressive, &mut rng);
            assert!(!p.attributes.is_empty());
        }
    }

    #[test]
    fn replacement_introduces_noise_attrs() {
        let base = &base_schemas()[3];
        let cfg = PerturbConfig {
            add: 0.0,
            remove: 0.0,
            replace: 1.0,
        };
        let mut rng = StdRng::seed_from_u64(3);
        let p = perturb(base, &cfg, &mut rng);
        assert!(p.perturbed);
        assert_eq!(p.attributes.len(), base.attributes.len());
        assert_eq!(p.attributes.iter().filter(|(_, c)| c.is_none()).count(), 1);
    }

    #[test]
    fn addition_appends_noise() {
        let base = &base_schemas()[7];
        let cfg = PerturbConfig {
            add: 1.0,
            remove: 0.0,
            replace: 0.0,
        };
        let mut rng = StdRng::seed_from_u64(4);
        let p = perturb(base, &cfg, &mut rng);
        assert!(p.attributes.len() > base.attributes.len());
        assert!(p.attributes.iter().any(|(_, c)| c.is_none()));
    }

    #[test]
    fn no_duplicate_names_after_perturbation() {
        let base = &base_schemas()[9];
        let cfg = PerturbConfig {
            add: 1.0,
            remove: 0.5,
            replace: 0.5,
        };
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..100 {
            let p = perturb(base, &cfg, &mut rng);
            // Noise words can coincide with a replaced word only by the
            // explicit dedup check for additions; replacements pick a slot
            // so the only duplication risk would be replace + add of the
            // same word. Verify names unique in practice for this seed.
            let mut names: Vec<&String> = p.attributes.iter().map(|(n, _)| n).collect();
            names.sort();
            let before = names.len();
            names.dedup();
            assert!(names.len() + 1 >= before, "mass duplication: {p:?}");
        }
    }

    #[test]
    fn default_config_usually_preserves_domain_character() {
        let base = &base_schemas()[0];
        let mut rng = StdRng::seed_from_u64(6);
        let mut domain_attrs = 0usize;
        let mut total = 0usize;
        for _ in 0..500 {
            let p = perturb(base, &PerturbConfig::default(), &mut rng);
            domain_attrs += p.attributes.iter().filter(|(_, c)| c.is_some()).count();
            total += p.attributes.len();
        }
        let frac = domain_attrs as f64 / total as f64;
        assert!(frac > 0.7, "domain fraction collapsed to {frac}");
    }
}
