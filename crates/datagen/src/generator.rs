//! The end-to-end universe generator.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use mube_pcsa::{PcsaSketch, TupleHasher, DEFAULT_NUM_MAPS};
use mube_schema::{AttrId, SourceBuilder, SourceId, Universe};

use crate::ground_truth::GroundTruth;
use crate::perturb::{perturb, PerturbConfig};
use crate::repository::{base_schemas, NUM_BASE_SCHEMAS};
use crate::sampler::{ClampedNormal, ZipfCardinality};
use crate::tuples::{build_source_sketch, PoolConfig};

/// Configuration of one synthetic universe.
#[derive(Debug, Clone)]
pub struct UniverseConfig {
    /// Number of sources to generate. The first `min(n, 50)` are the
    /// unperturbed base schemas ("random sources with schemas that are
    /// fully conformant to one of the original BAMM schemas"); the rest are
    /// perturbed copies of base `i mod 50`.
    pub num_sources: usize,
    /// Experiment seed driving perturbation, cardinalities, data, and MTTF.
    pub seed: u64,
    /// Perturbation probabilities.
    pub perturb: PerturbConfig,
    /// Tuple pools.
    pub pool: PoolConfig,
    /// Cardinality distribution.
    pub min_cardinality: u64,
    /// Upper cardinality bound.
    pub max_cardinality: u64,
    /// Zipf exponent for the cardinality distribution.
    pub zipf_exponent: f64,
    /// MTTF distribution (days).
    pub mttf_mean: f64,
    /// MTTF standard deviation (days).
    pub mttf_std: f64,
    /// PCSA bitmaps per source signature.
    pub sketch_maps: usize,
    /// Whether to build per-source data sketches at all. Schema-only
    /// experiments can skip the (comparatively expensive) data synthesis.
    pub with_data: bool,
}

impl UniverseConfig {
    /// The paper's configuration at a given universe size and seed.
    pub fn paper(num_sources: usize, seed: u64) -> Self {
        Self {
            num_sources,
            seed,
            perturb: PerturbConfig::default(),
            pool: PoolConfig::default(),
            min_cardinality: 10_000,
            max_cardinality: 1_000_000,
            zipf_exponent: 1.0,
            mttf_mean: 100.0,
            mttf_std: 40.0,
            sketch_maps: DEFAULT_NUM_MAPS,
            with_data: true,
        }
    }

    /// A scaled-down configuration for fast unit and integration tests:
    /// small pools and cardinalities, same structure.
    pub fn small_test(num_sources: usize, seed: u64) -> Self {
        Self {
            num_sources,
            seed,
            perturb: PerturbConfig::default(),
            pool: PoolConfig::small(),
            min_cardinality: 100,
            max_cardinality: 5_000,
            zipf_exponent: 1.0,
            mttf_mean: 100.0,
            mttf_std: 40.0,
            sketch_maps: 64,
            with_data: true,
        }
    }

    /// Builds the universe.
    pub fn generate(&self) -> GeneratedUniverse {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let bases = base_schemas();
        let zipf = ZipfCardinality::new(
            self.min_cardinality,
            self.max_cardinality,
            20,
            self.zipf_exponent,
        );
        let mttf = ClampedNormal {
            mean: self.mttf_mean,
            std: self.mttf_std,
            floor: 1.0,
        };
        let hasher = TupleHasher::default();

        let mut universe = Universe::new();
        let mut sketches: Vec<Option<PcsaSketch>> = Vec::with_capacity(self.num_sources);
        let mut ground_truth = GroundTruth::new();

        for i in 0..self.num_sources {
            let base = &bases[i % NUM_BASE_SCHEMAS];
            let (site, attributes) = if i < NUM_BASE_SCHEMAS {
                // Fully conformant original.
                (
                    base.site.clone(),
                    base.attributes
                        .iter()
                        .map(|(n, c)| (n.clone(), Some(*c)))
                        .collect::<Vec<_>>(),
                )
            } else {
                let p = perturb(base, &self.perturb, &mut rng);
                (
                    format!("{}-v{}", base.site, i / NUM_BASE_SCHEMAS),
                    p.attributes,
                )
            };

            let cardinality = zipf.sample(&mut rng);
            let mut builder = SourceBuilder::new(site)
                .attributes(attributes.iter().map(|(n, _)| n.clone()))
                .cardinality(cardinality)
                .characteristic("mttf", mttf.sample(&mut rng));
            // Characteristic beyond the paper's: a latency figure, handy
            // for user-defined QEF examples.
            builder = builder.characteristic("latency", rng.gen_range(20.0..800.0));
            let id = universe
                .add_source(builder)
                .expect("generated schemas are well-formed");
            debug_assert_eq!(id, SourceId(i as u32));

            for (j, (_, concept)) in attributes.iter().enumerate() {
                if let Some(c) = concept {
                    ground_truth.record(AttrId::new(id, j as u32), *c);
                }
            }

            if self.with_data {
                // "Half the data sources got all their tuples from the
                // General pool" — even ids general-only, odd ids mixed.
                let mixed = i % 2 == 1;
                sketches.push(Some(build_source_sketch(
                    &self.pool,
                    cardinality,
                    mixed,
                    hasher,
                    self.sketch_maps,
                    &mut rng,
                )));
            } else {
                sketches.push(None);
            }
        }

        GeneratedUniverse {
            universe,
            sketches,
            ground_truth,
        }
    }
}

/// A generated universe: sources, their cached PCSA signatures, and the
/// attribute-level ground truth for concept scoring.
pub struct GeneratedUniverse {
    /// The sources.
    pub universe: Universe,
    /// Per-source signature (index = source id); `None` when data synthesis
    /// was disabled.
    pub sketches: Vec<Option<PcsaSketch>>,
    /// Which concept each attribute expresses.
    pub ground_truth: GroundTruth,
}

impl GeneratedUniverse {
    /// Ids of the fully conformant (unperturbed) sources, used to pick the
    /// paper's source constraints.
    pub fn conformant_sources(&self) -> Vec<SourceId> {
        (0..self.universe.len().min(NUM_BASE_SCHEMAS))
            .map(|i| SourceId(i as u32))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_size() {
        let g = UniverseConfig::small_test(30, 7).generate();
        assert_eq!(g.universe.len(), 30);
        assert_eq!(g.sketches.len(), 30);
        assert!(g.sketches.iter().all(Option::is_some));
    }

    #[test]
    fn first_fifty_are_conformant() {
        let g = UniverseConfig::small_test(60, 7).generate();
        let bases = base_schemas();
        for (i, base) in bases.iter().enumerate().take(50) {
            let s = &g.universe.sources()[i];
            assert_eq!(s.name(), base.site);
            let names: Vec<&str> = s.attributes().iter().map(String::as_str).collect();
            let base_names: Vec<&str> = base.attributes.iter().map(|(n, _)| n.as_str()).collect();
            assert_eq!(names, base_names, "source {i} deviates from base");
        }
        assert_eq!(g.conformant_sources().len(), 50);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = UniverseConfig::small_test(20, 5).generate();
        let b = UniverseConfig::small_test(20, 5).generate();
        assert_eq!(a.universe, b.universe);
        assert_eq!(a.sketches, b.sketches);
        let c = UniverseConfig::small_test(20, 6).generate();
        assert_ne!(a.universe, c.universe);
    }

    #[test]
    fn cardinalities_within_bounds() {
        let g = UniverseConfig::small_test(40, 9).generate();
        for s in g.universe.sources() {
            assert!(
                (100..=5_000).contains(&s.cardinality()),
                "{}",
                s.cardinality()
            );
        }
    }

    #[test]
    fn every_source_has_mttf_and_latency() {
        let g = UniverseConfig::small_test(25, 11).generate();
        for s in g.universe.sources() {
            assert!(s.characteristic("mttf").unwrap() >= 1.0);
            assert!(s.characteristic("latency").unwrap() >= 20.0);
        }
    }

    #[test]
    fn ground_truth_covers_unperturbed_attrs() {
        let g = UniverseConfig::small_test(10, 13).generate();
        // First 10 sources are conformant: every attribute has a concept.
        for s in g.universe.sources() {
            for attr in s.attr_ids() {
                assert!(
                    g.ground_truth.concept_of(attr).is_some(),
                    "conformant attr {attr} lacks ground truth"
                );
            }
        }
    }

    #[test]
    fn perturbed_universe_contains_noise() {
        let g = UniverseConfig::small_test(150, 17).generate();
        let noise = g
            .universe
            .all_attrs()
            .filter(|a| g.ground_truth.concept_of(*a).is_none())
            .count();
        assert!(noise > 0, "150-source universe should contain noise attrs");
    }

    #[test]
    fn without_data_skips_sketches() {
        let mut cfg = UniverseConfig::small_test(10, 19);
        cfg.with_data = false;
        let g = cfg.generate();
        assert!(g.sketches.iter().all(Option::is_none));
    }

    #[test]
    fn sketch_estimates_are_plausible() {
        let g = UniverseConfig::small_test(12, 23).generate();
        for (s, sk) in g.universe.sources().iter().zip(&g.sketches) {
            let est = sk.as_ref().unwrap().estimate();
            let card = s.cardinality() as f64;
            assert!(
                (est - card).abs() / card < 0.45,
                "estimate {est} vs cardinality {card}"
            );
        }
    }
}
