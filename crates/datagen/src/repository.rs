//! The 50 base Books-domain schemas — our stand-in for the BAMM repository.
//!
//! BAMM's Books schemas were extracted from real Web query interfaces. This
//! module regenerates a repository with the same statistical character: 50
//! sites, each exposing 3–8 of the [14 concepts](crate::concepts::CONCEPTS)
//! under site-specific surface forms, with common concepts (title, author,
//! keyword, isbn) present at most sites and rarer ones (edition, reader
//! age) at few.
//!
//! The repository is **fixed**: it is derived from a hard-coded internal
//! seed, independent of any experiment seed, exactly as the BAMM files were
//! fixed inputs for the paper. Perturbation and data generation (which *do*
//! vary per experiment) happen downstream in [`crate::perturb`] and
//! [`crate::generator`].

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::concepts::{ConceptId, CONCEPTS, NUM_CONCEPTS};

/// Number of base schemas, matching BAMM's Books domain.
pub const NUM_BASE_SCHEMAS: usize = 50;

/// Internal seed fixing the repository contents.
const REPOSITORY_SEED: u64 = 0x00B0_0CA7_BA5E_D00D;

/// Per-concept probability of appearing in a given site's interface.
/// Ordered as [`CONCEPTS`]: title, author, isbn, keyword, publisher, price,
/// format, subject, publication year, edition, language, condition,
/// reader age, seller.
const CONCEPT_FREQUENCY: [f64; NUM_CONCEPTS] = [
    0.90, 0.88, 0.72, 0.80, 0.55, 0.45, 0.35, 0.50, 0.40, 0.18, 0.30, 0.25, 0.15, 0.22,
];

/// Probability that a site uses the canonical (index-0) alias for a concept
/// it exposes; otherwise one of the other aliases, uniformly.
const CANONICAL_ALIAS_PROBABILITY: f64 = 0.55;

/// One base schema: a site name and its attributes with ground truth.
#[derive(Debug, Clone)]
pub struct BaseSchema {
    /// Synthetic site name.
    pub site: String,
    /// `(attribute name, concept)` pairs.
    pub attributes: Vec<(String, ConceptId)>,
}

/// Builds the fixed 50-schema repository.
pub fn base_schemas() -> Vec<BaseSchema> {
    let mut rng = StdRng::seed_from_u64(REPOSITORY_SEED);
    let mut schemas = Vec::with_capacity(NUM_BASE_SCHEMAS);
    for site_idx in 0..NUM_BASE_SCHEMAS {
        let mut attributes: Vec<(String, ConceptId)> = Vec::new();
        for (ci, concept) in CONCEPTS.iter().enumerate() {
            if rng.gen::<f64>() < CONCEPT_FREQUENCY[ci] {
                let alias = if rng.gen::<f64>() < CANONICAL_ALIAS_PROBABILITY {
                    concept.aliases[0]
                } else {
                    concept.aliases[rng.gen_range(1..concept.aliases.len())]
                };
                attributes.push((alias.to_owned(), ConceptId(ci as u8)));
            }
        }
        // Every interface has at least a keyword-ish search box; guarantee
        // non-empty schemas by falling back to the keyword concept.
        if attributes.is_empty() {
            attributes.push((CONCEPTS[3].aliases[0].to_owned(), ConceptId(3)));
        }
        schemas.push(BaseSchema {
            site: format!("books{site_idx:02}.example.com"),
            attributes,
        });
    }
    schemas
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn fifty_schemas_every_time() {
        let s = base_schemas();
        assert_eq!(s.len(), 50);
        // Deterministic: regenerating gives identical content.
        let again = base_schemas();
        for (a, b) in s.iter().zip(&again) {
            assert_eq!(a.site, b.site);
            assert_eq!(a.attributes, b.attributes);
        }
    }

    #[test]
    fn schemas_are_nonempty_and_within_arity() {
        for s in base_schemas() {
            assert!(!s.attributes.is_empty(), "{} empty", s.site);
            assert!(s.attributes.len() <= NUM_CONCEPTS);
        }
    }

    #[test]
    fn no_schema_repeats_a_concept() {
        for s in base_schemas() {
            let concepts: BTreeSet<_> = s.attributes.iter().map(|(_, c)| c).collect();
            assert_eq!(concepts.len(), s.attributes.len(), "{}", s.site);
        }
    }

    #[test]
    fn all_fourteen_concepts_are_represented_somewhere() {
        let mut seen = BTreeSet::new();
        for s in base_schemas() {
            for (_, c) in &s.attributes {
                seen.insert(*c);
            }
        }
        assert_eq!(
            seen.len(),
            NUM_CONCEPTS,
            "repository must cover all concepts"
        );
    }

    #[test]
    fn common_concepts_are_common() {
        let schemas = base_schemas();
        let count = |ci: u8| {
            schemas
                .iter()
                .filter(|s| s.attributes.iter().any(|(_, c)| c.0 == ci))
                .count()
        };
        // title and author in a clear majority; edition in a minority.
        assert!(count(0) > 35, "title in {} sites", count(0));
        assert!(count(1) > 35, "author in {} sites", count(1));
        assert!(count(9) < 20, "edition in {} sites", count(9));
    }

    #[test]
    fn every_concept_has_identical_name_pair_somewhere() {
        // The strict θ = 0.75 threshold mostly clusters identical names; for
        // a concept to be discoverable at all, at least two sites must share
        // a surface form. Verify for the frequent concepts (the rare ones
        // may legitimately be hard to discover in a small selection).
        let schemas = base_schemas();
        for ci in [0u8, 1, 2, 3, 4] {
            let mut names: Vec<&str> = Vec::new();
            for s in &schemas {
                for (n, c) in &s.attributes {
                    if c.0 == ci {
                        names.push(n);
                    }
                }
            }
            let has_pair = names
                .iter()
                .any(|n| names.iter().filter(|m| *m == n).count() >= 2);
            assert!(has_pair, "concept {ci} never repeats a surface form");
        }
    }
}
