//! Property tests for the synthetic universe generator.

use proptest::prelude::*;

use mube_datagen::{GaScore, UniverseConfig};
use mube_schema::{GlobalAttribute, MediatedSchema};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn generated_universes_are_well_formed(size in 5usize..80, seed in 0u64..1_000) {
        let g = UniverseConfig::small_test(size, seed).generate();
        prop_assert_eq!(g.universe.len(), size);
        prop_assert_eq!(g.sketches.len(), size);
        for s in g.universe.sources() {
            prop_assert!(s.arity() >= 1);
            prop_assert!((100..=5_000).contains(&s.cardinality()));
            prop_assert!(s.characteristic("mttf").unwrap() >= 1.0);
        }
        // All ground-truth labels reference real attributes.
        for attr in g.universe.all_attrs() {
            let _ = g.ground_truth.concept_of(attr); // must not panic
        }
    }

    #[test]
    fn conformant_prefix_has_full_ground_truth(size in 5usize..60, seed in 0u64..100) {
        let g = UniverseConfig::small_test(size, seed).generate();
        for s in g.universe.sources().iter().take(size.min(50)) {
            for attr in s.attr_ids() {
                prop_assert!(
                    g.ground_truth.concept_of(attr).is_some(),
                    "conformant attr {attr} unlabeled"
                );
            }
        }
    }

    #[test]
    fn scoring_is_consistent(size in 10usize..50, seed in 0u64..50) {
        let g = UniverseConfig::small_test(size, seed).generate();
        let gt = &g.ground_truth;
        let all: Vec<_> = g.universe.sources().iter().map(|s| s.id()).collect();

        // Empty schema: nothing found or false; everything present missed.
        let empty: GaScore = gt.score(&MediatedSchema::empty(), all.iter().copied());
        prop_assert_eq!(empty.true_gas, 0);
        prop_assert_eq!(empty.false_gas, 0);
        prop_assert_eq!(empty.missed, gt.concepts_present(all.iter().copied()).len());

        // A perfect single-concept GA scores as one true GA.
        let mut per_concept: std::collections::BTreeMap<_, Vec<_>> = Default::default();
        for attr in g.universe.all_attrs() {
            if let Some(c) = gt.concept_of(attr) {
                per_concept.entry(c).or_default().push(attr);
            }
        }
        if let Some((concept, attrs)) = per_concept
            .iter()
            .find(|(_, v)| {
                let sources: std::collections::BTreeSet<_> =
                    v.iter().map(|a| a.source).collect();
                sources.len() >= 2
            })
        {
            // One attribute per source.
            let mut chosen = Vec::new();
            let mut seen = std::collections::BTreeSet::new();
            for &a in attrs {
                if seen.insert(a.source) {
                    chosen.push(a);
                }
            }
            let ga = GlobalAttribute::new(chosen).unwrap();
            let m = MediatedSchema::new([ga]);
            let score = gt.score(&m, all.iter().copied());
            prop_assert_eq!(score.true_gas, 1, "concept {:?}", concept);
            prop_assert_eq!(score.false_gas, 0);
        }
    }

    #[test]
    fn different_seeds_differ_same_seed_agrees(size in 10usize..40, seed in 0u64..100) {
        let a = UniverseConfig::small_test(size, seed).generate();
        let b = UniverseConfig::small_test(size, seed).generate();
        prop_assert_eq!(&a.universe, &b.universe);
        let c = UniverseConfig::small_test(size, seed + 1).generate();
        // Cardinalities or schemas will differ with overwhelming likelihood.
        prop_assert_ne!(&a.universe, &c.universe);
    }
}
