//! Comparing solutions across iterations.
//!
//! The sensitivity experiment (Section 7.4) reports how much a solution
//! *changed* when the weights were perturbed — "at most 1 GA in the
//! solution to change, and the selected sources rarely changed". This
//! module gives sessions a first-class diff between two solutions.

use std::fmt;

use mube_schema::{GlobalAttribute, SourceId};

use crate::solution::Solution;

/// Differences between two solutions.
#[derive(Debug, Clone, PartialEq)]
pub struct SolutionDiff {
    /// Sources selected in the first solution only.
    pub removed_sources: Vec<SourceId>,
    /// Sources selected in the second solution only.
    pub added_sources: Vec<SourceId>,
    /// GAs present in the first schema only.
    pub removed_gas: Vec<GlobalAttribute>,
    /// GAs present in the second schema only.
    pub added_gas: Vec<GlobalAttribute>,
    /// Change in overall quality (second minus first).
    pub quality_delta: f64,
}

impl SolutionDiff {
    /// Computes the diff from `before` to `after`.
    pub fn between(before: &Solution, after: &Solution) -> Self {
        let removed_sources = before
            .selected
            .iter()
            .copied()
            .filter(|s| !after.selected.contains(s))
            .collect();
        let added_sources = after
            .selected
            .iter()
            .copied()
            .filter(|s| !before.selected.contains(s))
            .collect();
        let removed_gas = before
            .schema
            .gas()
            .iter()
            .filter(|ga| !after.schema.gas().contains(ga))
            .cloned()
            .collect();
        let added_gas = after
            .schema
            .gas()
            .iter()
            .filter(|ga| !before.schema.gas().contains(ga))
            .cloned()
            .collect();
        Self {
            removed_sources,
            added_sources,
            removed_gas,
            added_gas,
            quality_delta: after.overall_quality - before.overall_quality,
        }
    }

    /// Whether the two solutions are identical in sources and schema.
    pub fn is_unchanged(&self) -> bool {
        self.removed_sources.is_empty()
            && self.added_sources.is_empty()
            && self.removed_gas.is_empty()
            && self.added_gas.is_empty()
    }

    /// Total number of source membership changes.
    pub fn source_changes(&self) -> usize {
        self.removed_sources.len() + self.added_sources.len()
    }

    /// Total number of GA membership changes (symmetric difference).
    pub fn ga_changes(&self) -> usize {
        self.removed_gas.len() + self.added_gas.len()
    }
}

impl fmt::Display for SolutionDiff {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_unchanged() {
            return write!(f, "no changes (ΔQ = {:+.4})", self.quality_delta);
        }
        writeln!(
            f,
            "ΔQ = {:+.4}; {} source changes, {} GA changes",
            self.quality_delta,
            self.source_changes(),
            self.ga_changes()
        )?;
        for s in &self.removed_sources {
            writeln!(f, "  - source {s}")?;
        }
        for s in &self.added_sources {
            writeln!(f, "  + source {s}")?;
        }
        for ga in &self.removed_gas {
            writeln!(f, "  - GA {ga}")?;
        }
        for ga in &self.added_gas {
            writeln!(f, "  + GA {ga}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solution::SolveStats;
    use mube_schema::{AttrId, MediatedSchema};

    fn ga(pairs: &[(u32, u32)]) -> GlobalAttribute {
        GlobalAttribute::new(pairs.iter().map(|&(s, j)| AttrId::new(SourceId(s), j))).unwrap()
    }

    fn solution(sources: &[u32], gas: Vec<GlobalAttribute>, q: f64) -> Solution {
        Solution {
            selected: sources.iter().map(|&s| SourceId(s)).collect(),
            schema: MediatedSchema::new(gas),
            overall_quality: q,
            qef_values: Default::default(),
            stats: SolveStats::default(),
        }
    }

    #[test]
    fn identical_solutions_have_empty_diff() {
        let a = solution(&[0, 1], vec![ga(&[(0, 0), (1, 0)])], 0.5);
        let diff = SolutionDiff::between(&a, &a);
        assert!(diff.is_unchanged());
        assert_eq!(diff.source_changes(), 0);
        assert_eq!(diff.ga_changes(), 0);
        assert_eq!(diff.quality_delta, 0.0);
        assert!(diff.to_string().contains("no changes"));
    }

    #[test]
    fn diff_captures_all_change_kinds() {
        let a = solution(
            &[0, 1, 2],
            vec![ga(&[(0, 0), (1, 0)]), ga(&[(1, 1), (2, 0)])],
            0.5,
        );
        let b = solution(
            &[0, 1, 3],
            vec![ga(&[(0, 0), (1, 0)]), ga(&[(1, 1), (3, 0)])],
            0.6,
        );
        let diff = SolutionDiff::between(&a, &b);
        assert_eq!(diff.removed_sources, vec![SourceId(2)]);
        assert_eq!(diff.added_sources, vec![SourceId(3)]);
        assert_eq!(diff.removed_gas.len(), 1);
        assert_eq!(diff.added_gas.len(), 1);
        assert!((diff.quality_delta - 0.1).abs() < 1e-12);
        let text = diff.to_string();
        assert!(text.contains("- source s2"));
        assert!(text.contains("+ source s3"));
        assert!(text.contains("2 GA changes"));
    }

    #[test]
    fn diff_is_antisymmetric_in_delta() {
        let a = solution(&[0], vec![], 0.3);
        let b = solution(&[1], vec![], 0.7);
        let ab = SolutionDiff::between(&a, &b);
        let ba = SolutionDiff::between(&b, &a);
        assert_eq!(ab.quality_delta, -ba.quality_delta);
        assert_eq!(ab.added_sources, ba.removed_sources);
    }
}
