//! The [`Mube`] engine and its builder.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

use mube_audit::{AuditReport, SolutionAuditor, SolutionFacts};
use mube_opt::{
    CancelToken, Portfolio, PortfolioMember, SolveResult, Solver, SubsetProblem, TabuSearch,
};
use mube_pcsa::PcsaSketch;
use mube_qef::{CardinalityQef, CharacteristicQef, CoverageQef, Qef, QefContext, RedundancyQef};
use mube_schema::{SourceId, Universe};
use mube_similarity::{NgramJaccard, SimilarityMeasure};

use crate::arena::EvalArena;
use crate::error::MubeError;
use crate::matrix_sim::MatrixSimilarity;
use crate::objective::{ArenaRef, MubeObjective, QefBinding};
use crate::problem::{ProblemSpec, SimBackend};
use crate::snapshot::UniverseSnapshot;
use crate::solution::{Solution, SolveStats};

/// The µBE engine: a cheap, cloneable handle over one immutable
/// [`UniverseSnapshot`].
///
/// The snapshot holds everything expensive and iteration-independent (the
/// all-pairs attribute similarity store, the cached PCSA signatures, the
/// registered QEFs); the engine adds the solve orchestration on top.
/// Cloning a `Mube` clones an `Arc`, so engines can be handed to threads
/// and sessions freely — all clones share the one snapshot.
/// Per-iteration inputs live in [`ProblemSpec`].
#[derive(Clone)]
pub struct Mube {
    snapshot: Arc<UniverseSnapshot>,
}

/// Builder for [`Mube`].
pub struct MubeBuilder {
    universe: Arc<Universe>,
    sketches: Option<Vec<Option<PcsaSketch>>>,
    measure: Option<Box<dyn SimilarityMeasure>>,
    extra_qefs: Vec<Box<dyn Qef>>,
    sim_backend: SimBackend,
}

impl MubeBuilder {
    /// Starts a builder for `universe` (cloned into a shared handle; use
    /// [`MubeBuilder::from_arc`] to avoid the copy when the caller already
    /// holds an `Arc`).
    pub fn new(universe: &Universe) -> Self {
        Self::from_arc(Arc::new(universe.clone()))
    }

    /// Starts a builder that shares `universe` instead of cloning it.
    pub fn from_arc(universe: Arc<Universe>) -> Self {
        Self {
            universe,
            sketches: None,
            measure: None,
            extra_qefs: Vec::new(),
            sim_backend: SimBackend::default(),
        }
    }

    /// Supplies the per-source PCSA signatures (index = source id). Without
    /// them, coverage and redundancy degrade to the paper's uncooperative
    /// mode (0-valued).
    pub fn sketches(mut self, sketches: Vec<Option<PcsaSketch>>) -> Self {
        self.sketches = Some(sketches);
        self
    }

    /// Overrides the attribute similarity measure (default: 3-gram
    /// Jaccard, the paper's choice). Only consulted while building — the
    /// snapshot stores the computed matrix, not the measure.
    pub fn measure(mut self, measure: Box<dyn SimilarityMeasure>) -> Self {
        self.measure = Some(measure);
        self
    }

    /// Registers a user-defined QEF ("users ... can define new quality
    /// metrics"). Its [`Qef::name`] becomes bindable from weights.
    pub fn qef(mut self, qef: Box<dyn Qef>) -> Self {
        self.extra_qefs.push(qef);
        self
    }

    /// Selects the similarity backend (default: [`SimBackend::Auto`] with a
    /// 256 MiB dense budget — dense for small universes, sparse blocked
    /// storage when the packed triangle would not fit).
    pub fn sim_backend(mut self, backend: SimBackend) -> Self {
        self.sim_backend = backend;
        self
    }

    /// Builds the engine, computing the similarity store.
    ///
    /// Kept infallible for the common path: if the configured backend fails
    /// to build (e.g. an explicit [`SimBackend::Sparse`] under a
    /// non-blockable measure, or a spill I/O failure), this falls back to
    /// the dense matrix — the historical behaviour. Use
    /// [`MubeBuilder::try_build`] to surface backend errors instead.
    pub fn build(self) -> Mube {
        let MubeBuilder {
            universe,
            sketches,
            measure,
            extra_qefs,
            sim_backend,
        } = self;
        let default_measure = NgramJaccard::default();
        let measure: &dyn SimilarityMeasure = measure.as_deref().unwrap_or(&default_measure);
        let sim = MatrixSimilarity::with_backend(&universe, measure, &sim_backend)
            .unwrap_or_else(|_| MatrixSimilarity::new(&universe, measure));
        Self::assemble(universe, sketches, extra_qefs, sim)
    }

    /// Builds the engine, surfacing similarity-backend failures as
    /// [`MubeError::SimBackend`] instead of falling back to dense.
    pub fn try_build(self) -> Result<Mube, MubeError> {
        let MubeBuilder {
            universe,
            sketches,
            measure,
            extra_qefs,
            sim_backend,
        } = self;
        let default_measure = NgramJaccard::default();
        let measure: &dyn SimilarityMeasure = measure.as_deref().unwrap_or(&default_measure);
        let sim = MatrixSimilarity::with_backend(&universe, measure, &sim_backend)?;
        Ok(Self::assemble(universe, sketches, extra_qefs, sim))
    }

    /// Assembles the engine around an already-built similarity store.
    fn assemble(
        universe: Arc<Universe>,
        sketches: Option<Vec<Option<PcsaSketch>>>,
        extra_qefs: Vec<Box<dyn Qef>>,
        sim: MatrixSimilarity,
    ) -> Mube {
        let ctx = match sketches {
            Some(sketches) => QefContext::new(universe, sketches),
            None => QefContext::without_sketches(universe),
        };
        let mut qefs: Vec<Box<dyn Qef>> = vec![
            Box::new(CardinalityQef),
            Box::new(CoverageQef),
            Box::new(RedundancyQef),
        ];
        qefs.extend(extra_qefs);
        Mube {
            snapshot: Arc::new(UniverseSnapshot::new(ctx, sim, qefs)),
        }
    }
}

impl Mube {
    /// The engine's universe.
    pub fn universe(&self) -> &Universe {
        self.snapshot.universe()
    }

    /// The shared immutable snapshot backing this engine — hand clones of
    /// this `Arc` (or of the whole engine) to other threads to run
    /// concurrent sessions over one universe.
    pub fn snapshot(&self) -> &Arc<UniverseSnapshot> {
        &self.snapshot
    }

    /// The precomputed attribute similarity.
    pub fn similarity(&self) -> &MatrixSimilarity {
        self.snapshot.similarity()
    }

    /// The QEF evaluation context (sketches, ranges).
    pub fn context(&self) -> &QefContext {
        self.snapshot.context()
    }

    /// Validates a spec and resolves its weights into QEF bindings.
    fn resolve_bindings(&self, spec: &ProblemSpec) -> Result<Vec<(f64, QefBinding)>, MubeError> {
        let mut bindings = Vec::with_capacity(spec.weights.len());
        for (name, w) in spec.weights.iter() {
            let binding = if name == "matching" {
                QefBinding::Matching
            } else if let Some(idx) = self.snapshot.qefs().iter().position(|q| q.name() == name) {
                QefBinding::Registered(idx)
            } else if self.snapshot.context().characteristic_range(name).is_some() {
                QefBinding::Characteristic(CharacteristicQef::new(
                    name,
                    mube_qef::Aggregation::WeightedSum,
                ))
            } else {
                return Err(MubeError::UnknownQef {
                    name: name.to_owned(),
                });
            };
            bindings.push((w, binding));
        }
        Ok(bindings)
    }

    fn validate_spec(&self, spec: &ProblemSpec) -> Result<(), MubeError> {
        spec.constraints.validate(self.universe())?;
        if spec.max_sources == 0 {
            return Err(MubeError::ZeroMaxSources);
        }
        let required = spec.constraints.required_sources().len();
        if spec.max_sources < required {
            return Err(MubeError::MaxSourcesTooSmall {
                max_sources: spec.max_sources,
                required,
            });
        }
        let theta = spec.match_config.theta;
        if !(0.0..=1.0).contains(&theta) || !theta.is_finite() {
            return Err(MubeError::InvalidTheta { theta });
        }
        Ok(())
    }

    /// Builds the optimizer-facing objective for a spec, memoizing into a
    /// fresh private arena that dies with the objective. Exposed for
    /// benches and tests that want to drive solvers directly.
    pub fn objective(&self, spec: &ProblemSpec) -> Result<MubeObjective, MubeError> {
        self.objective_with(spec, ArenaRef::Owned(Box::default()))
    }

    /// Builds the optimizer-facing objective for a spec on a caller-owned
    /// [`EvalArena`], first pointing the arena at the spec (classifying the
    /// delta against the previous spec and invalidating accordingly — see
    /// [`EvalArena::prepare`]). Entries memoized during the solve persist
    /// in the arena for the next call.
    ///
    /// The arena must only ever be used with *this* engine: entries are
    /// keyed by subset alone, so feeding them to a different universe,
    /// similarity matrix, or sketch set would alias unrelated evaluations
    /// (a universe-*size* change is detected and clears the arena; an
    /// equal-sized different universe is not detectable).
    pub fn objective_in(
        &self,
        spec: &ProblemSpec,
        arena: &Arc<EvalArena>,
    ) -> Result<MubeObjective, MubeError> {
        self.validate_spec(spec)?;
        arena.prepare(spec, self.universe().len());
        self.objective_with(spec, ArenaRef::Shared(Arc::clone(arena)))
    }

    fn objective_with(
        &self,
        spec: &ProblemSpec,
        arena: ArenaRef,
    ) -> Result<MubeObjective, MubeError> {
        self.validate_spec(spec)?;
        let bindings = self.resolve_bindings(spec)?;
        let objective = MubeObjective::new(
            Arc::clone(&self.snapshot),
            bindings,
            spec.constraints.clone(),
            spec.match_config.clone(),
            spec.max_sources.min(self.universe().len().max(1)),
            arena,
        );
        if let Some(capacity) = spec.cache_capacity {
            objective.set_cache_capacity(capacity);
        }
        Ok(objective)
    }

    /// Turns a solver result into a [`Solution`]: reconstructs the winning
    /// schema, reports per-QEF values, and collects the solve stats
    /// (including the parallel-evaluation fields carried on the result).
    ///
    /// A cancelled result with a feasible incumbent still produces a full,
    /// audited solution (flagged via [`SolveStats::cancelled`]); a
    /// cancelled result that never saw a feasible candidate surfaces as
    /// [`MubeError::Cancelled`] rather than the misleading
    /// [`MubeError::NoFeasibleSolution`].
    fn finish(
        &self,
        spec: &ProblemSpec,
        objective: &MubeObjective,
        result: &SolveResult,
        started: Instant,
    ) -> Result<Solution, MubeError> {
        if !result.is_feasible() {
            return Err(if result.cancelled {
                MubeError::Cancelled
            } else {
                MubeError::NoFeasibleSolution
            });
        }
        let selected: Vec<SourceId> = result.best.iter().map(|i| SourceId(i as u32)).collect();
        let outcome = objective
            .match_schema(&selected)
            .ok_or(MubeError::InconsistentSolverResult)?;
        let qef_values: BTreeMap<String, (f64, f64)> = objective
            .component_values(&selected)
            .into_iter()
            .map(|(name, w, v)| (name, (w, v)))
            .collect();
        let solution = Solution {
            selected,
            schema: outcome.schema,
            overall_quality: result.objective,
            qef_values,
            stats: {
                let match_stats = objective.match_stats();
                SolveStats {
                    gap: result.gap,
                    nodes_expanded: result.nodes_expanded,
                    nodes_pruned: result.nodes_pruned,
                    evaluations: result.evaluations,
                    iterations: result.iterations,
                    match_calls: objective.match_calls(),
                    cache_hits: objective.cache_hits(),
                    linkage_evals: match_stats.linkage_evals,
                    lw_updates: match_stats.lw_updates,
                    evictions: objective.evictions(),
                    reused: objective.reused(),
                    recombined: objective.recombined(),
                    invalidated: objective.invalidated(),
                    spec_delta: objective.spec_delta(),
                    portfolio_member: result.winner,
                    batch_width: result.batch_width,
                    // Cold unless the caller (Session) primed a warm-start
                    // solver; it overwrites this field after the solve.
                    warm_start: false,
                    cancelled: result.cancelled,
                    elapsed: started.elapsed(),
                }
            },
        };
        // Debug-mode oracle: every solve must satisfy the paper's §2
        // invariants — including cancelled solves, whose incumbent is a
        // fully evaluated feasible candidate like any other. Release builds
        // skip the check; tests and benches can call `Mube::audit`
        // explicitly.
        #[cfg(debug_assertions)]
        self.audit(spec, &solution).assert_clean("Mube::solve");
        #[cfg(not(debug_assertions))]
        let _ = spec;
        Ok(solution)
    }

    /// Wall-clock sample for [`SolveStats::elapsed`] telemetry. The timing
    /// never feeds back into any result, which is why this is the one
    /// permitted `Instant::now` in the determinism-scoped crates (paired
    /// with the `no-ambient-entropy` allowlist entry and clippy.toml's
    /// `disallowed-methods` mirror).
    #[allow(clippy::disallowed_methods)]
    fn clock_now() -> Instant {
        Instant::now()
    }

    /// One solve: objective construction (optionally on a shared arena),
    /// optional cancellation arming, the search, and result assembly.
    fn solve_with(
        &self,
        spec: &ProblemSpec,
        solver: &dyn Solver,
        seed: u64,
        arena: Option<&Arc<EvalArena>>,
        cancel: Option<&CancelToken>,
    ) -> Result<Solution, MubeError> {
        let started = Self::clock_now();
        let mut objective = match arena {
            Some(arena) => self.objective_in(spec, arena)?,
            None => self.objective(spec)?,
        };
        if let Some(token) = cancel {
            objective.arm_cancel(token);
        }
        let result = solver.solve(&objective, seed);
        self.finish(spec, &objective, &result, started)
    }

    /// Solves one iteration's optimization problem with the given solver.
    pub fn solve(
        &self,
        spec: &ProblemSpec,
        solver: &dyn Solver,
        seed: u64,
    ) -> Result<Solution, MubeError> {
        self.solve_with(spec, solver, seed, None, None)
    }

    /// Like [`Mube::solve`], but memoizes into a caller-owned
    /// [`EvalArena`] that outlives the solve — the delta-aware session
    /// path. Component vectors cached by earlier solves on the same arena
    /// are reused according to the spec delta (see [`EvalArena`]): a
    /// weights-only edit re-solves without a single `Match(S)` call.
    ///
    /// Arena values are bit-identical to cold evaluations, so for any
    /// fixed seed this returns exactly the solution [`Mube::solve`] would.
    pub fn solve_in(
        &self,
        spec: &ProblemSpec,
        solver: &dyn Solver,
        seed: u64,
        arena: &Arc<EvalArena>,
    ) -> Result<Solution, MubeError> {
        self.solve_with(spec, solver, seed, Some(arena), None)
    }

    /// Like [`Mube::solve`], with a [`CancelToken`] armed for the duration
    /// of the solve. The solver polls the token at its round / node / batch
    /// boundaries: a cancellation makes it stop and return its best
    /// incumbent (flagged via [`SolveStats::cancelled`] and audited like
    /// any other solution), or [`MubeError::Cancelled`] when no feasible
    /// candidate had been seen yet. A token that never fires leaves the
    /// result bit-identical to [`Mube::solve`] — polling is
    /// observation-only.
    pub fn solve_cancellable(
        &self,
        spec: &ProblemSpec,
        solver: &dyn Solver,
        seed: u64,
        cancel: &CancelToken,
    ) -> Result<Solution, MubeError> {
        self.solve_with(spec, solver, seed, None, Some(cancel))
    }

    /// [`Mube::solve_in`] with a [`CancelToken`] armed — the session path:
    /// shared arena *and* cooperative cancellation.
    pub fn solve_cancellable_in(
        &self,
        spec: &ProblemSpec,
        solver: &dyn Solver,
        seed: u64,
        arena: &Arc<EvalArena>,
        cancel: &CancelToken,
    ) -> Result<Solution, MubeError> {
        self.solve_with(spec, solver, seed, Some(arena), Some(cancel))
    }

    /// One portfolio race, with the same optional arena / cancellation
    /// plumbing as [`Mube::solve_with`].
    fn portfolio_with(
        &self,
        spec: &ProblemSpec,
        portfolio: &Portfolio,
        seed: u64,
        arena: Option<&Arc<EvalArena>>,
        cancel: Option<&CancelToken>,
    ) -> Result<(Solution, Vec<PortfolioMember>), MubeError> {
        let started = Self::clock_now();
        let mut objective = match arena {
            Some(arena) => self.objective_in(spec, arena)?,
            None => self.objective(spec)?,
        };
        if let Some(token) = cancel {
            objective.arm_cancel(token);
        }
        let outcome = portfolio.run(&objective, seed);
        let solution = self.finish(spec, &objective, &outcome.result, started)?;
        Ok((solution, outcome.members))
    }

    /// Solves by racing a [`Portfolio`] of solvers against one shared
    /// objective (and therefore one shared `Q(S)` memo cache: members
    /// amortize each other's `Match(S)` work). Returns the winning solution
    /// — [`SolveStats::portfolio_member`] names the member that produced it
    /// and [`SolveStats::evaluations`] counts the whole race's effort —
    /// plus per-member statistics in configuration order.
    pub fn solve_portfolio(
        &self,
        spec: &ProblemSpec,
        portfolio: &Portfolio,
        seed: u64,
    ) -> Result<(Solution, Vec<PortfolioMember>), MubeError> {
        self.portfolio_with(spec, portfolio, seed, None, None)
    }

    /// Like [`Mube::solve_portfolio`], but memoizing into a caller-owned
    /// [`EvalArena`]: the racing members share the session's persistent
    /// component-vector store, so they amortize not only each other's
    /// `Match(S)` work but every *previous iteration's* as well.
    pub fn solve_portfolio_in(
        &self,
        spec: &ProblemSpec,
        portfolio: &Portfolio,
        seed: u64,
        arena: &Arc<EvalArena>,
    ) -> Result<(Solution, Vec<PortfolioMember>), MubeError> {
        self.portfolio_with(spec, portfolio, seed, Some(arena), None)
    }

    /// [`Mube::solve_portfolio_in`] with a [`CancelToken`] armed: every
    /// racing member polls the same token, so one cancellation stops the
    /// whole race at the members' next checkpoints.
    pub fn solve_portfolio_cancellable_in(
        &self,
        spec: &ProblemSpec,
        portfolio: &Portfolio,
        seed: u64,
        arena: &Arc<EvalArena>,
        cancel: &CancelToken,
    ) -> Result<(Solution, Vec<PortfolioMember>), MubeError> {
        self.portfolio_with(spec, portfolio, seed, Some(arena), Some(cancel))
    }

    /// Statically verifies a solution against the paper's §2 invariants
    /// (GA validity and disjointness, constraint subsumption and spanning,
    /// β/θ floors, `|S| ≤ m`, `C ⊆ S`, QEF ranges and weight simplex).
    ///
    /// Debug builds run this automatically after every [`Mube::solve`];
    /// call it directly to audit externally constructed or stored solutions.
    pub fn audit(&self, spec: &ProblemSpec, solution: &Solution) -> AuditReport {
        let qef_breakdown: Vec<(String, f64, f64)> = solution
            .qef_values
            .iter()
            .map(|(name, &(w, v))| (name.clone(), w, v))
            .collect();
        SolutionAuditor::new(self.universe())
            .constraints(&spec.constraints)
            .theta(spec.match_config.theta)
            .beta(spec.match_config.beta)
            .similarity(self.similarity())
            .max_sources(spec.max_sources.min(self.universe().len().max(1)))
            .audit(&SolutionFacts {
                selected: &solution.selected,
                schema: &solution.schema,
                qef_breakdown: &qef_breakdown,
                overall_quality: solution.overall_quality,
            })
    }

    /// Convenience: solve with the paper's default solver (tabu search).
    pub fn solve_default(&self, spec: &ProblemSpec, seed: u64) -> Result<Solution, MubeError> {
        self.solve(spec, &TabuSearch::default(), seed)
    }

    /// Solves *exactly* with best-first branch-and-bound over admissible
    /// QEF bounds (monotone, modular, and characteristic relaxations plus
    /// an LP tightening at shallow nodes — see
    /// [`mube_opt::BranchAndBound`]). The returned solution carries
    /// `stats.gap == Some(0.0)`: a certificate that no subset under the
    /// spec scores higher.
    ///
    /// Worst-case exponential in the universe size — intended for small
    /// universes and for auditing heuristic solutions. For an *anytime*
    /// exact solve (node budget, certified residual gap) or a warm start
    /// from a heuristic incumbent, configure a
    /// [`mube_opt::BranchAndBound`] directly and pass it to
    /// [`Mube::solve`] or race it inside a [`Portfolio`].
    pub fn solve_exact(&self, spec: &ProblemSpec, seed: u64) -> Result<Solution, MubeError> {
        self.solve(spec, &mube_opt::BranchAndBound::default(), seed)
    }

    /// Evaluates `Q(S)` for an explicit source set without searching —
    /// useful for what-if analysis in sessions.
    pub fn evaluate(&self, spec: &ProblemSpec, ids: &[SourceId]) -> Result<f64, MubeError> {
        let objective = self.objective(spec)?;
        let subset =
            mube_opt::Subset::from_indices(self.universe().len(), ids.iter().map(|id| id.index()));
        Ok(objective.evaluate(&subset))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mube_qef::Weights;
    use mube_schema::SourceBuilder;

    fn tiny_universe() -> Universe {
        let mut u = Universe::new();
        for (name, attrs, card) in [
            ("a", vec!["title", "author"], 100u64),
            ("b", vec!["title", "author", "isbn"], 200),
            ("c", vec!["zzz", "qqq"], 300),
            ("d", vec!["title", "price"], 150),
        ] {
            u.add_source(
                SourceBuilder::new(name)
                    .attributes(attrs)
                    .cardinality(card)
                    .characteristic("mttf", card as f64),
            )
            .unwrap();
        }
        u
    }

    #[test]
    fn solve_picks_matching_sources() {
        let u = tiny_universe();
        let mube = MubeBuilder::new(&u).build();
        let spec = ProblemSpec::new(2).with_weights(Weights::new([("matching", 1.0)]).unwrap());
        let solution = mube.solve_default(&spec, 1).unwrap();
        assert_eq!(solution.num_sources(), 2);
        // The best pair for pure matching excludes source c.
        assert!(!solution.selected.contains(&SourceId(2)));
        assert!(solution.overall_quality > 0.9);
        assert!(!solution.schema.is_empty());
    }

    #[test]
    fn cardinality_weight_pulls_in_big_sources() {
        let u = tiny_universe();
        let mube = MubeBuilder::new(&u).build();
        let spec = ProblemSpec::new(2).with_weights(Weights::new([("cardinality", 1.0)]).unwrap());
        let solution = mube.solve_default(&spec, 2).unwrap();
        // b (200) + c (300) dominate.
        assert!(solution.selected.contains(&SourceId(1)));
        assert!(solution.selected.contains(&SourceId(2)));
    }

    #[test]
    fn unknown_qef_weight_is_an_error() {
        let u = tiny_universe();
        let mube = MubeBuilder::new(&u).build();
        let spec = ProblemSpec::new(2).with_weights(Weights::new([("nonsense", 1.0)]).unwrap());
        assert!(matches!(
            mube.solve_default(&spec, 0),
            Err(MubeError::UnknownQef { .. })
        ));
    }

    #[test]
    fn characteristic_weight_binds_automatically() {
        let u = tiny_universe();
        let mube = MubeBuilder::new(&u).build();
        let spec = ProblemSpec::new(2).with_weights(Weights::new([("mttf", 1.0)]).unwrap());
        let solution = mube.solve_default(&spec, 3).unwrap();
        assert!(solution.qef_value("mttf").is_some());
    }

    #[test]
    fn constraints_are_respected() {
        let u = tiny_universe();
        let mube = MubeBuilder::new(&u).build();
        let spec = ProblemSpec::new(2)
            .with_weights(Weights::new([("matching", 1.0)]).unwrap())
            .with_source_constraint(SourceId(3));
        let solution = mube.solve_default(&spec, 4).unwrap();
        assert!(solution.selected.contains(&SourceId(3)));
    }

    #[test]
    fn unmatched_constraint_source_makes_problem_infeasible() {
        // Source c's attributes match nothing, so M can never span C = {c}:
        // the paper's Match returns a null schema and the whole problem is
        // infeasible.
        let u = tiny_universe();
        let mube = MubeBuilder::new(&u).build();
        let spec = ProblemSpec::new(2)
            .with_weights(Weights::new([("matching", 1.0)]).unwrap())
            .with_source_constraint(SourceId(2));
        assert!(matches!(
            mube.solve_default(&spec, 4),
            Err(MubeError::NoFeasibleSolution)
        ));
    }

    #[test]
    fn max_sources_too_small_rejected() {
        let u = tiny_universe();
        let mube = MubeBuilder::new(&u).build();
        let spec = ProblemSpec::new(1)
            .with_source_constraint(SourceId(0))
            .with_source_constraint(SourceId(1));
        assert!(matches!(
            mube.solve_default(&spec, 0),
            Err(MubeError::MaxSourcesTooSmall { .. })
        ));
    }

    #[test]
    fn invalid_theta_rejected() {
        let u = tiny_universe();
        let mube = MubeBuilder::new(&u).build();
        let spec = ProblemSpec::new(2).with_theta(1.5);
        assert!(matches!(
            mube.solve_default(&spec, 0),
            Err(MubeError::InvalidTheta { .. })
        ));
    }

    #[test]
    fn evaluate_explicit_sets() {
        let u = tiny_universe();
        let mube = MubeBuilder::new(&u).build();
        let spec = ProblemSpec::new(3).with_weights(Weights::new([("matching", 1.0)]).unwrap());
        let good = mube.evaluate(&spec, &[SourceId(0), SourceId(1)]).unwrap();
        let bad = mube.evaluate(&spec, &[SourceId(2)]).unwrap();
        assert!(good > bad);
    }

    #[test]
    fn solution_deterministic_per_seed() {
        let u = tiny_universe();
        let mube = MubeBuilder::new(&u).build();
        let spec = ProblemSpec::new(2);
        let a = mube.solve_default(&spec, 9).unwrap();
        let b = mube.solve_default(&spec, 9).unwrap();
        assert_eq!(a.selected, b.selected);
        assert_eq!(a.schema, b.schema);
    }

    #[test]
    fn cloned_engines_share_one_snapshot() {
        let u = tiny_universe();
        let mube = MubeBuilder::new(&u).build();
        let clone = mube.clone();
        assert!(Arc::ptr_eq(mube.snapshot(), clone.snapshot()));
        let spec = ProblemSpec::new(2);
        let a = mube.solve_default(&spec, 9).unwrap();
        let b = clone.solve_default(&spec, 9).unwrap();
        assert_eq!(a.selected, b.selected);
        assert_eq!(a.overall_quality.to_bits(), b.overall_quality.to_bits());
    }

    #[test]
    fn unfired_cancel_token_is_bit_identical_to_plain_solve() {
        let u = tiny_universe();
        let mube = MubeBuilder::new(&u).build();
        let spec = ProblemSpec::new(2);
        let plain = mube.solve_default(&spec, 9).unwrap();
        let token = CancelToken::new();
        let armed = mube
            .solve_cancellable(&spec, &TabuSearch::default(), 9, &token)
            .unwrap();
        assert!(!armed.stats.cancelled);
        assert_eq!(plain.selected, armed.selected);
        assert_eq!(plain.schema, armed.schema);
        assert_eq!(
            plain.overall_quality.to_bits(),
            armed.overall_quality.to_bits()
        );
    }

    #[test]
    fn cancel_fired_before_arming_does_not_abort() {
        // Epoch semantics: a cancellation consumed (or simply issued)
        // before a solve starts must not abort that solve — each solve
        // captures the epoch at arming time.
        let u = tiny_universe();
        let mube = MubeBuilder::new(&u).build();
        let spec = ProblemSpec::new(2);
        let token = CancelToken::new();
        token.cancel();
        let solution = mube
            .solve_cancellable(&spec, &TabuSearch::default(), 9, &token)
            .unwrap();
        assert!(!solution.stats.cancelled);
        let plain = mube.solve_default(&spec, 9).unwrap();
        assert_eq!(plain.selected, solution.selected);
    }

    #[test]
    fn mid_solve_cancel_returns_audited_incumbent() {
        use mube_schema::SourceSelection;
        use std::sync::atomic::{AtomicU64, Ordering};

        // A QEF that fires the cancel token on its Nth evaluation — a
        // deterministic stand-in for a user hitting cancel mid-solve.
        struct Tripwire {
            token: CancelToken,
            calls: AtomicU64,
            after: u64,
        }
        impl Qef for Tripwire {
            fn name(&self) -> &str {
                "tripwire"
            }
            fn evaluate(&self, _s: &SourceSelection, _c: &QefContext) -> f64 {
                if self.calls.fetch_add(1, Ordering::Relaxed) + 1 == self.after {
                    self.token.cancel();
                }
                0.0
            }
        }

        let u = tiny_universe();
        let token = CancelToken::new();
        let mube = MubeBuilder::new(&u)
            .qef(Box::new(Tripwire {
                token: token.clone(),
                calls: AtomicU64::new(0),
                after: 3,
            }))
            .build();
        let spec = ProblemSpec::new(2)
            .with_weights(Weights::new([("matching", 0.5), ("tripwire", 0.5)]).unwrap());
        let cancelled = mube
            .solve_cancellable(&spec, &TabuSearch::default(), 9, &token)
            .unwrap();
        assert!(cancelled.stats.cancelled);
        assert!(cancelled.overall_quality.is_finite());
        mube.audit(&spec, &cancelled)
            .assert_clean("cancelled solve");
    }

    #[test]
    fn custom_qef_registers_and_binds() {
        use mube_qef::QefContext;
        use mube_schema::SourceSelection;

        /// A user-defined QEF: prefers selections containing source 0.
        struct FavoriteSource;
        impl mube_qef::Qef for FavoriteSource {
            fn name(&self) -> &str {
                "favorite"
            }
            fn evaluate(&self, selection: &SourceSelection, _ctx: &QefContext) -> f64 {
                f64::from(u8::from(selection.contains(SourceId(0))))
            }
        }

        let u = tiny_universe();
        let mube = MubeBuilder::new(&u).qef(Box::new(FavoriteSource)).build();
        let spec = ProblemSpec::new(1).with_weights(Weights::new([("favorite", 1.0)]).unwrap());
        let solution = mube.solve_default(&spec, 0).unwrap();
        assert_eq!(solution.selected, vec![SourceId(0)]);
        assert_eq!(solution.qef_value("favorite"), Some(1.0));
    }

    #[test]
    fn registered_qef_shadows_characteristic_of_same_name() {
        use mube_qef::QefContext;
        use mube_schema::SourceSelection;

        // A registered QEF named "mttf" must win over the auto-derived
        // characteristic binding (registration order is deliberate: the
        // user's definition is more specific).
        struct ConstantHalf;
        impl mube_qef::Qef for ConstantHalf {
            fn name(&self) -> &str {
                "mttf"
            }
            fn evaluate(&self, _s: &SourceSelection, _c: &QefContext) -> f64 {
                0.5
            }
        }
        let u = tiny_universe();
        let mube = MubeBuilder::new(&u).qef(Box::new(ConstantHalf)).build();
        let spec = ProblemSpec::new(1).with_weights(Weights::new([("mttf", 1.0)]).unwrap());
        let solution = mube.solve_default(&spec, 0).unwrap();
        assert_eq!(solution.qef_value("mttf"), Some(0.5));
        assert!((solution.overall_quality - 0.5).abs() < 1e-12);
    }

    #[test]
    fn beta_propagates_into_matching() {
        // With β = 3, only GAs spanning 3+ sources survive; the tiny
        // universe's best 3-source "title" cluster qualifies but "author"
        // (2 sources) does not.
        let u = tiny_universe();
        let mube = MubeBuilder::new(&u).build();
        let spec = ProblemSpec::new(3)
            .with_weights(Weights::new([("matching", 1.0)]).unwrap())
            .with_beta(3);
        let solution = mube.solve_default(&spec, 1).unwrap();
        for ga in solution.schema.gas() {
            assert!(ga.len() >= 3, "GA below beta: {ga}");
        }
    }

    #[test]
    fn m_larger_than_universe_is_clamped() {
        let u = tiny_universe();
        let mube = MubeBuilder::new(&u).build();
        let spec = ProblemSpec::new(100);
        let solution = mube.solve_default(&spec, 0).unwrap();
        assert!(solution.num_sources() <= u.len());
    }

    #[test]
    fn solve_reports_linkage_work() {
        let u = tiny_universe();
        let mube = MubeBuilder::new(&u).build();
        let spec = ProblemSpec::new(2);
        let solution = mube.solve_default(&spec, 5).unwrap();
        // The default spec weights "matching", so Match(S) ran and its
        // kernel counters must have propagated into the solve stats.
        assert!(solution.stats.linkage_evals > 0);
    }

    #[test]
    fn cache_reduces_match_calls() {
        let u = tiny_universe();
        let mube = MubeBuilder::new(&u).build();
        let spec = ProblemSpec::new(2);
        let solution = mube.solve_default(&spec, 5).unwrap();
        assert!(
            solution.stats.cache_hits > 0,
            "tabu revisits should hit cache"
        );
        assert!(solution.stats.match_calls <= solution.stats.evaluations);
    }
}
