//! The solved data integration system.

use std::collections::BTreeMap;
use std::fmt;
use std::time::Duration;

use mube_schema::{MediatedSchema, SchemaMapping, SourceId, Universe};

use crate::arena::SpecDelta;

/// Search-effort statistics for one solve.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SolveStats {
    /// Certified optimality gap, when the solver proves one: the true
    /// optimum lies in `[Q, Q + gap]` for the reported quality `Q`.
    /// `Some(0.0)` is a proof of optimality (exact branch-and-bound ran to
    /// completion); positive values are anytime bounds under a node
    /// budget; `None` means the solver makes no optimality claim
    /// (heuristics, portfolios won by a heuristic member).
    pub gap: Option<f64>,
    /// Branch-and-bound nodes expanded (zero for non-exact solvers).
    pub nodes_expanded: u64,
    /// Branch-and-bound nodes pruned by bound, dominance, or the final
    /// incumbent-covers-everything closure (zero for non-exact solvers).
    pub nodes_pruned: u64,
    /// Objective evaluations (including memoized hits).
    pub evaluations: u64,
    /// Solver iterations.
    pub iterations: u64,
    /// `Match(S)` invocations (cache misses only — the expensive part).
    pub match_calls: u64,
    /// Evaluations served from the memo cache.
    pub cache_hits: u64,
    /// Full cluster-pair linkage evaluations inside `Match(S)` calls
    /// (attribute-pair cross products — the clustering kernel's unit of
    /// work; see `MatchStats` in `mube-cluster`).
    pub linkage_evals: u64,
    /// Incremental-kernel Lance–Williams row derivations inside `Match(S)`
    /// calls (zero when the brute-force kernel is selected).
    pub lw_updates: u64,
    /// Memoized `Q(S)` entries dropped by cache-capacity eviction (zero
    /// unless a capacity was set and reached).
    pub evictions: u64,
    /// Evaluations served by arena entries that survived from an *earlier*
    /// session iteration (zero for one-shot solves on a fresh arena).
    pub reused: u64,
    /// The subset of [`SolveStats::reused`] recombined under weights that
    /// differ from the ones the entry was computed with — the weights-only
    /// fast path (component vectors re-weighted, zero `Match(S)` calls).
    pub recombined: u64,
    /// Arena entries invalidated by the spec edit that led to this solve
    /// (nonzero only after a `MatchInvalidating` edit in a session).
    pub invalidated: u64,
    /// How this solve's spec differed from the previous spec evaluated on
    /// the same arena (`None` for one-shot solves on a fresh arena).
    pub spec_delta: Option<SpecDelta>,
    /// Whether the solve started from a warm-start solver primed with the
    /// previous iteration's solution. `false` when the solve was cold —
    /// including the case where a session requested warm restarts but the
    /// configured solver does not support them.
    pub warm_start: bool,
    /// Whether the solve was cut short by a
    /// [`CancelToken`](crate::CancelToken): the solution is the honest
    /// best incumbent at the stop point (audited like any other), and the
    /// effort counters cover only the work actually done. Always `false`
    /// for runs that completed — an armed token that never fires changes
    /// nothing.
    pub cancelled: bool,
    /// For portfolio solves, the name of the member solver that produced
    /// the solution; `None` for single-solver runs.
    pub portfolio_member: Option<&'static str>,
    /// Parallel evaluation width: the resolved batch-evaluator width of the
    /// solver (1 = serial), or the member count for a portfolio solve.
    pub batch_width: usize,
    /// Wall-clock time of the solve.
    pub elapsed: Duration,
}

/// A data integration system chosen by µBE: the selected sources, the
/// automatically generated mediated schema over them, and the quality
/// breakdown.
#[derive(Debug, Clone)]
pub struct Solution {
    /// The selected sources `S`, in id order.
    pub selected: Vec<SourceId>,
    /// The mediated schema `M = Match(S)`.
    pub schema: MediatedSchema,
    /// The overall quality `Q(S)` the optimizer maximized.
    pub overall_quality: f64,
    /// Per-QEF `(weight, value)` breakdown, keyed by QEF name.
    pub qef_values: BTreeMap<String, (f64, f64)>,
    /// Search-effort statistics.
    pub stats: SolveStats,
}

impl Solution {
    /// The value of one QEF on this solution, if it was weighted.
    pub fn qef_value(&self, name: &str) -> Option<f64> {
        self.qef_values.get(name).map(|&(_, v)| v)
    }

    /// Number of selected sources.
    pub fn num_sources(&self) -> usize {
        self.selected.len()
    }

    /// Materializes the source-to-mediated-schema mapping of this system
    /// (the third component of the paper's data integration system
    /// definition), ready for query translation.
    pub fn mapping(&self, universe: &Universe) -> SchemaMapping {
        SchemaMapping::new(universe, &self.schema, self.selected.iter().copied())
    }
}

impl fmt::Display for Solution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "solution: {} sources, Q = {:.4} ({} GAs, {} match calls, {:?})",
            self.selected.len(),
            self.overall_quality,
            self.schema.len(),
            self.stats.match_calls,
            self.stats.elapsed,
        )?;
        write!(f, "  sources:")?;
        for id in &self.selected {
            write!(f, " {id}")?;
        }
        writeln!(f)?;
        for (name, (w, v)) in &self.qef_values {
            writeln!(f, "  {name}: {v:.4} (weight {w:.2})")?;
        }
        write!(f, "{}", self.schema)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let s = Solution {
            selected: vec![SourceId(1), SourceId(4)],
            schema: MediatedSchema::empty(),
            overall_quality: 0.5,
            qef_values: [("matching".to_owned(), (0.25, 0.8))].into_iter().collect(),
            stats: SolveStats::default(),
        };
        assert_eq!(s.num_sources(), 2);
        assert_eq!(s.qef_value("matching"), Some(0.8));
        assert_eq!(s.qef_value("coverage"), None);
        let text = s.to_string();
        assert!(text.contains("2 sources"));
        assert!(text.contains("matching: 0.8000"));
    }
}
