//! Engine errors.

use std::fmt;

use mube_schema::SchemaError;

/// Errors surfaced by the µBE engine.
#[derive(Debug, Clone, PartialEq)]
pub enum MubeError {
    /// Constraint validation failed against the universe.
    Schema(SchemaError),
    /// A weight names a QEF that is neither registered nor a source
    /// characteristic.
    UnknownQef {
        /// The unresolved weight name.
        name: String,
    },
    /// `m` (max sources) is smaller than the number of constraint-required
    /// sources — no feasible solution exists.
    MaxSourcesTooSmall {
        /// Requested bound.
        max_sources: usize,
        /// Number of sources constraints force in.
        required: usize,
    },
    /// `m` must be at least 1.
    ZeroMaxSources,
    /// The matching threshold must lie in `[0, 1]`.
    InvalidTheta {
        /// The rejected value.
        theta: f64,
    },
    /// The solver never found a feasible solution (all candidates violated
    /// GA constraints).
    NoFeasibleSolution,
    /// The solve was cancelled before any feasible candidate was seen, so
    /// there is no incumbent to return. (A cancellation *after* a feasible
    /// incumbent exists is not an error: the solve returns that incumbent
    /// with `stats.cancelled` set.)
    Cancelled,
    /// The solver reported a feasible selection whose `Match(S)` nevertheless
    /// produced a null schema — a solver/objective contract breach.
    InconsistentSolverResult,
    /// The configured similarity backend could not be built (non-blockable
    /// measure for the sparse backend, invalid τ, or a spill I/O failure).
    /// Carries the backend's rendered error: the underlying
    /// [`mube_similarity::SparseError`] holds an `io::Error`, which is
    /// neither `Clone` nor `PartialEq` as this enum requires.
    SimBackend {
        /// Human-readable failure description from the backend.
        reason: String,
    },
}

impl fmt::Display for MubeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MubeError::Schema(e) => write!(f, "constraint validation failed: {e}"),
            MubeError::UnknownQef { name } => write!(
                f,
                "weight refers to unknown QEF {name:?} (not registered, not a characteristic)"
            ),
            MubeError::MaxSourcesTooSmall {
                max_sources,
                required,
            } => write!(
                f,
                "max sources {max_sources} below the {required} sources required by constraints"
            ),
            MubeError::ZeroMaxSources => write!(f, "max sources must be at least 1"),
            MubeError::InvalidTheta { theta } => {
                write!(f, "matching threshold must be in [0,1], got {theta}")
            }
            MubeError::NoFeasibleSolution => {
                write!(
                    f,
                    "no feasible solution found (GA constraints unsatisfiable?)"
                )
            }
            MubeError::Cancelled => {
                write!(f, "solve cancelled before any feasible incumbent was found")
            }
            MubeError::InconsistentSolverResult => write!(
                f,
                "solver reported a feasible selection but Match(S) returned a null schema"
            ),
            MubeError::SimBackend { reason } => {
                write!(f, "similarity backend build failed: {reason}")
            }
        }
    }
}

impl std::error::Error for MubeError {}

impl From<SchemaError> for MubeError {
    fn from(e: SchemaError) -> Self {
        MubeError::Schema(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(MubeError::ZeroMaxSources.to_string().contains("at least 1"));
        assert!(MubeError::UnknownQef {
            name: "latency".into()
        }
        .to_string()
        .contains("latency"));
        assert!(MubeError::InvalidTheta { theta: 2.0 }
            .to_string()
            .contains('2'));
    }

    #[test]
    fn schema_error_converts() {
        let e: MubeError = SchemaError::EmptyGa.into();
        assert!(matches!(e, MubeError::Schema(_)));
    }
}
