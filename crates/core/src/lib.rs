//! The µBE engine: formulation and solution of the source-selection /
//! schema-mediation optimization problem, and the iterative user-guided
//! session model.
//!
//! Sections 2 and 6 of the paper. The optimization problem is
//!
//! ```text
//! arg max_{S ⊆ U} Q(S) = Σ_i w_i F_i(S)
//! subject to  |S| ≤ m,  C ⊆ S,  G ⊑ M,
//!             ∀g ∈ (M − G): F1({g}) ≥ θ ∧ |g| ≥ β
//! ```
//!
//! where `M = Match(S)` is the automatically generated mediated schema.
//! The θ and β bounds are enforced *by construction* inside the clustering
//! algorithm (`mube-cluster`); the cardinality bound and source constraints
//! are enforced structurally by the solvers (`mube-opt`, "permanently tabu
//! regions"); the GA-constraint subsumption is enforced by `Match`
//! returning a null schema — which this crate translates to an infeasible
//! objective value.
//!
//! Main types:
//!
//! * [`Mube`] — the engine bound to one universe: precomputed similarity
//!   matrix, cached PCSA signatures, registered QEFs. Build one per
//!   universe with [`MubeBuilder`]; it is the expensive part.
//! * [`ProblemSpec`] — the cheap, per-iteration part: weights, constraints,
//!   `m`, θ, β. This is what the user edits between iterations.
//! * [`Solution`] — selected sources + mediated schema + per-QEF values.
//! * [`Session`] — the iterate/inspect/refine loop: feed a solution's GAs
//!   back as constraints, reweight, re-solve.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod arena;
pub mod diff;
pub mod engine;
pub mod error;
pub mod matrix_sim;
pub mod objective;
pub mod problem;
pub mod session;
pub mod snapshot;
pub mod solution;

pub use arena::{EvalArena, SpecDelta};
pub use diff::SolutionDiff;
pub use engine::{Mube, MubeBuilder};
pub use error::MubeError;
pub use matrix_sim::{MatrixSimilarity, SimBackendKind};
pub use mube_opt::CancelToken;
pub use objective::MubeObjective;
pub use problem::{ProblemSpec, SimBackend, SparseOptions};
pub use session::Session;
pub use snapshot::UniverseSnapshot;
pub use solution::{Solution, SolveStats};
