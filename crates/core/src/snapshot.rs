//! The immutable per-universe bundle every engine and session shares.
//!
//! A [`UniverseSnapshot`] owns everything that is expensive to compute and
//! iteration-independent: the universe itself (interned source and
//! attribute names), the all-pairs attribute similarity store, the cached
//! PCSA signatures wrapped in their [`QefContext`], and the registered
//! QEFs. It is built once by [`MubeBuilder`](crate::MubeBuilder) and then
//! only ever read — every field is immutable after construction, so the
//! snapshot is `Send + Sync` and an `Arc<UniverseSnapshot>` can back any
//! number of concurrent [`Session`](crate::Session)s without locks.
//!
//! [`Mube`](crate::Mube) is a thin cloneable handle over the `Arc`; cloning
//! an engine or starting a session never re-derives the similarity matrix.

use mube_qef::{Qef, QefContext};
use mube_schema::Universe;
use std::sync::Arc;

use crate::matrix_sim::MatrixSimilarity;

/// Immutable per-universe state: interned names, similarity store, PCSA
/// sketches (inside the [`QefContext`]), and registered QEFs.
///
/// Constructed only by [`MubeBuilder`](crate::MubeBuilder); consumers hold
/// it as `Arc<UniverseSnapshot>` and share it freely across threads.
pub struct UniverseSnapshot {
    /// QEF evaluation context; owns the `Arc<Universe>` and the sketches.
    ctx: QefContext,
    /// Precomputed all-pairs attribute similarity.
    sim: MatrixSimilarity,
    /// Registered QEFs (built-ins first, then user registrations). Bindings
    /// refer to these by index, so the order is fixed at build time.
    qefs: Vec<Box<dyn Qef>>,
}

impl UniverseSnapshot {
    pub(crate) fn new(ctx: QefContext, sim: MatrixSimilarity, qefs: Vec<Box<dyn Qef>>) -> Self {
        Self { ctx, sim, qefs }
    }

    /// The snapshot's universe.
    pub fn universe(&self) -> &Universe {
        self.ctx.universe()
    }

    /// A shared handle to the universe.
    pub fn universe_arc(&self) -> Arc<Universe> {
        self.ctx.universe_arc()
    }

    /// The QEF evaluation context (sketches, characteristic ranges).
    pub fn context(&self) -> &QefContext {
        &self.ctx
    }

    /// The precomputed attribute similarity store.
    pub fn similarity(&self) -> &MatrixSimilarity {
        &self.sim
    }

    /// The registered QEFs, in registration order (built-ins first).
    pub fn qefs(&self) -> &[Box<dyn Qef>] {
        &self.qefs
    }

    /// One registered QEF by index. Panics on out-of-range indices, which
    /// cannot happen for indices minted by binding resolution against this
    /// snapshot (bindings and snapshot are created together and the QEF
    /// list never changes afterwards).
    pub(crate) fn qef(&self, index: usize) -> &dyn Qef {
        self.qefs[index].as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Compile-time guarantee backing the multi-tenant design: one snapshot,
    // many threads. (The public assertion test in `tests/` re-checks this
    // from outside the crate.)
    #[test]
    fn snapshot_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<UniverseSnapshot>();
        assert_send_sync::<Arc<UniverseSnapshot>>();
    }
}
