//! The persistent, delta-aware evaluation arena behind iterative sessions.
//!
//! The paper's whole point (Section 6, Figure 4) is the
//! *iterate–inspect–refine* loop: the user re-weights QEFs, adopts GAs, or
//! tightens θ, and µBE re-solves. Section 2 makes the invalidation
//! structure of those edits explicit: `Q(S) = Σ_k w_k F_k(S)` — the weights
//! `W` scale the component functions but never change them, the constraints
//! `C` and budget `m` change which subsets are *admissible* but not any
//! subset's component values, and only the matching side (θ, β, the GA
//! constraints `G`, the `Match` configuration) changes what `Match(S)`
//! returns for a subset that is evaluated under both specs.
//!
//! [`EvalArena`] turns that observation into a cache that *outlives one
//! solve*: it memoizes, per subset, the full component vector
//! `[F_1(S) .. F_K(S)]` (a [`ComponentEval`]) instead of the scalar
//! `Q(S)`, and applies the weight combination at read time. Between
//! iterations the arena diffs the consecutive [`ProblemSpec`]s into a
//! [`SpecDelta`] class and invalidates exactly what the class demands:
//!
//! * [`SpecDelta::WeightsOnly`] — nothing is invalidated; every cached
//!   vector recombines under the new weights with **zero** `Match(S)`
//!   calls.
//! * [`SpecDelta::FeasibilityOnly`] — nothing is invalidated; the
//!   structural admissibility of a subset is re-derived on every read (the
//!   objective pre-checks the *current* required sources before trusting
//!   any cached entry), so entries stay valid even though the admissible
//!   region moved.
//! * [`SpecDelta::MatchInvalidating`] — only the match-dependent half of
//!   each entry is dropped: feasible entries keep their non-matching
//!   component values and recompute `Match(S)` alone on the next touch;
//!   null-schema entries are removed outright (they carry no reusable
//!   components).
//!
//! Entries are epoch-stamped (the epoch advances once per
//! [`EvalArena::prepare`]) so the engine can report how much of an
//! iteration's work was [`reused`](crate::SolveStats::reused) from earlier
//! iterations versus [`recombined`](crate::SolveStats::recombined) under
//! fresh weights versus [`invalidated`](crate::SolveStats::invalidated) by
//! the latest feedback.
//!
//! An arena is bound to one engine: reusing it across different
//! [`Mube`](crate::Mube) instances (different universes, similarity
//! measures, or sketch sets) aliases unrelated evaluations. [`Session`]
//! owns its arena and guarantees this; `Mube::solve_in` callers must
//! uphold it themselves (a universe-size change is detected and clears the
//! arena, but equal-sized distinct universes are not).
//!
//! [`Session`]: crate::Session

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError, RwLock};

use mube_opt::Subset;
use mube_schema::MediatedSchema;

use crate::problem::ProblemSpec;

/// Memo shards. Sixteen is plenty: the batched solvers run at most a few
/// dozen worker threads, and the shard index comes from high fingerprint
/// bits, so concurrent evaluations of a sampled neighborhood spread across
/// shards almost uniformly.
pub(crate) const SHARDS: usize = 16;

/// Default total entry budget. An entry is one subset plus a K-element
/// component vector — on the order of a hundred bytes at µBE's universe
/// sizes — so the default bounds the arena at roughly a hundred megabytes
/// while being effectively unbounded for whole sessions (which evaluate
/// tens of thousands of subsets per iteration, not a million).
const DEFAULT_CAPACITY: usize = 1 << 20;

/// Recovers a lock guard from a poisoned lock: arena state is always
/// internally consistent (every update completes under one guard), so a
/// panicking sibling thread must not wedge the evaluation.
fn unpoison<G>(r: Result<G, PoisonError<G>>) -> G {
    r.unwrap_or_else(PoisonError::into_inner)
}

/// Which shard a fingerprint lives in. High bits, so the shard choice is
/// independent of (and uncorrelated with) the ordered low-bit structure of
/// the keys within a shard's map.
fn shard_index(key: u64) -> usize {
    (key >> 60) as usize & (SHARDS - 1)
}

/// How a feedback edit between two consecutive [`ProblemSpec`]s relates to
/// the cached evaluation state — the paper-§2 invalidation boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpecDelta {
    /// Byte-for-byte identical problem: everything cached stays valid.
    Unchanged,
    /// Only the QEF weights `W` changed (same QEF names, new values).
    /// Component vectors recombine at read time; no `Match(S)` reruns.
    WeightsOnly,
    /// Only the admissible region changed (`C`, the required sources, or
    /// the budget `m`). Per-subset component values are untouched; the
    /// objective re-derives admissibility against the *current* spec on
    /// every read.
    FeasibilityOnly,
    /// The matching side changed (θ, β, linkage, kernel, pruning, or the
    /// GA constraints `G`) — or the weighted QEF *set* changed, which
    /// relays the cached vectors. Match-dependent state is flushed.
    MatchInvalidating,
}

impl SpecDelta {
    /// Classifies the edit from `prev` to `next`.
    ///
    /// Precedence runs strongest-first: a single feedback round that both
    /// reweights and tightens θ is `MatchInvalidating` (the weight change
    /// costs nothing extra — recombination happens on every read anyway).
    /// A change to the weighted QEF *names* is also `MatchInvalidating`:
    /// the cached component vectors are laid out in weight-name order, so
    /// a different QEF set means a different vector layout.
    pub fn classify(prev: &ProblemSpec, next: &ProblemSpec) -> SpecDelta {
        if layout_changed(prev, next)
            || prev.match_config != next.match_config
            || prev.constraints.gas() != next.constraints.gas()
        {
            return SpecDelta::MatchInvalidating;
        }
        if prev.constraints.sources() != next.constraints.sources()
            || prev.max_sources != next.max_sources
        {
            return SpecDelta::FeasibilityOnly;
        }
        if prev.weights != next.weights {
            return SpecDelta::WeightsOnly;
        }
        SpecDelta::Unchanged
    }
}

/// Whether the weighted QEF name set (and therefore the component-vector
/// layout) differs between two specs.
fn layout_changed(prev: &ProblemSpec, next: &ProblemSpec) -> bool {
    prev.weights.len() != next.weights.len()
        || prev
            .weights
            .iter()
            .zip(next.weights.iter())
            .any(|((a, _), (b, _))| a != b)
}

/// The match-dependent half of a cached evaluation.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum MatchPart {
    /// Clustering produced a schema: its `F1` quality plus a structural
    /// key of the mediated schema (for change detection without storing
    /// the schema itself).
    ///
    /// Whether the schema satisfies the *current* source constraints is
    /// deliberately not recorded: the spans check is re-applied at read
    /// time against [`spanned`](MatchPart::Feasible::spanned), which is
    /// what keeps these entries valid across `FeasibilityOnly` edits in
    /// both directions (constraint added *and* constraint dropped).
    Feasible {
        /// The matching-quality QEF value `F1(S)`.
        quality: f64,
        /// [`schema_key`] of the produced mediated schema.
        schema_key: u64,
        /// Sorted indices of the sources the schema spans (contributes at
        /// least one attribute to a GA). The read-time feasibility check is
        /// `required ⊆ spanned`.
        spanned: Vec<u32>,
    },
    /// Clustering could not produce any schema on this subset: a required
    /// source (or GA-constraint source) is missing from the subset itself.
    /// The objective pre-checks membership before touching the arena, so
    /// entries like this only arise with memoization disabled — they are
    /// never actually cached.
    Infeasible,
}

/// A memoized per-subset evaluation: the component vector
/// `[F_1(S) .. F_K(S)]` in weight-name (binding) order, with the
/// match-dependent part split out so it can be invalidated independently.
#[derive(Debug, Clone)]
pub(crate) struct ComponentEval {
    /// Match-dependent part. `None` when the spec weights no `"matching"`
    /// QEF — or when a [`SpecDelta::MatchInvalidating`] edit stripped it,
    /// in which case the next read recomputes `Match(S)` alone and reuses
    /// `components`.
    pub(crate) match_part: Option<MatchPart>,
    /// Non-matching component values, indexed by binding position (the
    /// matching slot, if any, holds an unused placeholder). Empty for
    /// null-schema evaluations, whose computation stopped at `Match`.
    pub(crate) components: Vec<f64>,
}

impl ComponentEval {
    /// The null-schema evaluation: no reusable components.
    pub(crate) fn infeasible() -> Self {
        Self {
            match_part: Some(MatchPart::Infeasible),
            components: Vec::new(),
        }
    }
}

/// One arena entry: the subset itself (buckets compare exact subsets — a
/// fingerprint collision lands in the same bucket but can never alias) plus
/// its evaluation and the bookkeeping stamps.
#[derive(Debug, Clone)]
pub(crate) struct ArenaEntry {
    pub(crate) subset: Subset,
    pub(crate) eval: ComponentEval,
    /// Arena epoch at insertion — entries from earlier epochs are
    /// cross-iteration survivors and count as reuse when read.
    pub(crate) epoch: u64,
    /// Weights version at insertion — a read under a newer version is a
    /// recombination (same components, different weight combination).
    pub(crate) weights_version: u64,
}

/// One shard: fingerprint-keyed buckets plus the entry count (buckets may
/// hold several exact subsets on fingerprint collision, so the map's `len`
/// undercounts). The buckets are a `BTreeMap` so every whole-shard walk
/// (`strip_match_parts`) visits entries in fingerprint order — hash-map
/// iteration order would vary per process and break the bit-identity
/// guarantee the moment a walk's side effects become order-sensitive.
#[derive(Default)]
struct ArenaShard {
    buckets: BTreeMap<u64, Vec<ArenaEntry>>,
    entries: usize,
}

/// A persistent, thread-safe store of [`ComponentEval`]s that spans µBE
/// iterations. See the module docs for the invalidation model.
///
/// All interior state is `Sync`: shards sit behind [`RwLock`]s, stamps and
/// counters are atomic, so a [`mube_opt::BatchEvaluator`] pool or a
/// [`mube_opt::Portfolio`]'s member threads can evaluate concurrently
/// against one arena and share each other's memoized `Match(S)` work —
/// within a solve *and* across a session's iterations.
pub struct EvalArena {
    shards: [RwLock<ArenaShard>; SHARDS],
    /// Advances once per [`EvalArena::prepare`]; entries are stamped with
    /// the epoch they were inserted in.
    epoch: AtomicU64,
    /// Advances whenever `prepare` sees a different weight vector; lets
    /// reads distinguish plain reuse from reweighted recombination.
    weights_version: AtomicU64,
    /// Total entry budget across all shards; a shard that fills its slice
    /// of the budget is cleared wholesale (coarse, but eviction is a
    /// safety valve here, not a working-set policy).
    capacity: AtomicUsize,
    /// Entries invalidated (stripped or removed) by the most recent
    /// `prepare`, for [`SolveStats::invalidated`](crate::SolveStats).
    last_invalidated: AtomicU64,
    /// The delta class the most recent `prepare` computed (`None` before
    /// any spec was seen, or right after a universe change reset).
    last_delta: Mutex<Option<SpecDelta>>,
    /// The spec (plus universe size) the arena was last prepared for.
    snapshot: Mutex<Option<(ProblemSpec, usize)>>,
}

impl Default for EvalArena {
    fn default() -> Self {
        Self::new()
    }
}

impl EvalArena {
    /// An empty arena with the default capacity.
    pub fn new() -> Self {
        Self {
            shards: std::array::from_fn(|_| RwLock::new(ArenaShard::default())),
            epoch: AtomicU64::new(0),
            weights_version: AtomicU64::new(0),
            capacity: AtomicUsize::new(DEFAULT_CAPACITY),
            last_invalidated: AtomicU64::new(0),
            last_delta: Mutex::new(None),
            snapshot: Mutex::new(None),
        }
    }

    /// Number of memoized evaluations currently held.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| unpoison(s.read()).entries).sum()
    }

    /// Whether the arena holds no evaluations.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The delta class computed by the most recent [`EvalArena::prepare`].
    pub fn last_delta(&self) -> Option<SpecDelta> {
        *unpoison(self.last_delta.lock())
    }

    /// Entries invalidated by the most recent [`EvalArena::prepare`].
    pub fn last_invalidated(&self) -> u64 {
        self.last_invalidated.load(Ordering::Relaxed)
    }

    /// Bounds the arena to roughly `capacity` entries across all shards
    /// (minimum one entry per shard).
    pub fn set_capacity(&self, capacity: usize) {
        self.capacity.store(capacity, Ordering::Relaxed);
    }

    /// Drops every memoized evaluation (stamps and the spec snapshot are
    /// kept). Returns the number of entries dropped.
    pub fn clear(&self) -> u64 {
        let mut dropped = 0u64;
        for shard in &self.shards {
            let mut guard = unpoison(shard.write());
            dropped += guard.entries as u64;
            guard.buckets.clear();
            guard.entries = 0;
        }
        dropped
    }

    /// Points the arena at the next iteration's spec: classifies the edit
    /// against the previously prepared spec, applies the invalidation the
    /// class demands, advances the epoch (and the weights version when the
    /// weights moved), and records the spec for the next diff.
    ///
    /// Returns `None` on first use or after a universe-size change (which
    /// clears the arena — there is no meaningful delta to report), the
    /// [`SpecDelta`] otherwise.
    pub fn prepare(&self, spec: &ProblemSpec, universe_len: usize) -> Option<SpecDelta> {
        enum Invalidate {
            Nothing,
            Clear,
            StripMatchParts,
        }
        // Classify against the previous spec and swap the snapshot inside
        // its own lock scope: `clear`/`strip_match_parts` take shard write
        // locks, and the arena never holds two of its locks at once (the
        // `lock-discipline` lint enforces this shape statically).
        let (delta, action, weights_moved) = {
            let mut snap = unpoison(self.snapshot.lock());
            let out = match snap.as_ref() {
                Some((prev, len)) if *len == universe_len => {
                    let delta = SpecDelta::classify(prev, spec);
                    let action = match delta {
                        SpecDelta::MatchInvalidating if layout_changed(prev, spec) => {
                            Invalidate::Clear
                        }
                        SpecDelta::MatchInvalidating => Invalidate::StripMatchParts,
                        _ => Invalidate::Nothing,
                    };
                    (Some(delta), action, prev.weights != spec.weights)
                }
                // Different universe: nothing cached can be trusted.
                Some(_) => (None, Invalidate::Clear, false),
                None => (None, Invalidate::Nothing, false),
            };
            *snap = Some((spec.clone(), universe_len));
            out
        };
        let invalidated = match action {
            Invalidate::Clear => self.clear(),
            Invalidate::StripMatchParts => self.strip_match_parts(),
            Invalidate::Nothing => 0,
        };
        self.last_invalidated.store(invalidated, Ordering::Relaxed);
        if weights_moved {
            self.weights_version.fetch_add(1, Ordering::Relaxed);
        }
        self.epoch.fetch_add(1, Ordering::Relaxed);
        *unpoison(self.last_delta.lock()) = delta;
        delta
    }

    /// Strips the match-dependent part from every entry: feasible entries
    /// keep their non-matching components (the next read recomputes
    /// `Match(S)` alone), null-schema entries are removed outright.
    /// Returns how many entries were touched.
    fn strip_match_parts(&self) -> u64 {
        let mut invalidated = 0u64;
        for shard in &self.shards {
            let mut guard = unpoison(shard.write());
            let mut removed = 0usize;
            for bucket in guard.buckets.values_mut() {
                bucket.retain_mut(|entry| match entry.eval.match_part {
                    Some(MatchPart::Feasible { .. }) => {
                        entry.eval.match_part = None;
                        invalidated += 1;
                        true
                    }
                    Some(MatchPart::Infeasible) => {
                        invalidated += 1;
                        removed += 1;
                        false
                    }
                    None => true,
                });
            }
            guard.buckets.retain(|_, bucket| !bucket.is_empty());
            guard.entries -= removed;
        }
        invalidated
    }

    /// Current epoch stamp.
    pub(crate) fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Relaxed)
    }

    /// Current weights-version stamp.
    pub(crate) fn weights_version(&self) -> u64 {
        self.weights_version.load(Ordering::Relaxed)
    }

    /// Reads the entry for `subset` under the shard's read lock, applying
    /// `read` to it while the lock is held (so combination needs no clone).
    pub(crate) fn probe<R>(
        &self,
        key: u64,
        subset: &Subset,
        read: impl FnOnce(&ArenaEntry) -> R,
    ) -> Option<R> {
        let guard = unpoison(self.shards[shard_index(key)].read());
        guard
            .buckets
            .get(&key)?
            .iter()
            .find(|e| e.subset == *subset)
            .map(read)
    }

    /// Inserts an evaluation stamped with the current epoch and weights
    /// version. A concurrent duplicate insert is a no-op (evaluation is
    /// pure — both threads computed the same vector). Returns the number
    /// of entries dropped by capacity eviction, for the caller's
    /// `evictions` accounting.
    pub(crate) fn insert(&self, key: u64, subset: &Subset, eval: ComponentEval) -> u64 {
        let mut guard = unpoison(self.shards[shard_index(key)].write());
        if let Some(bucket) = guard.buckets.get(&key) {
            if bucket.iter().any(|e| e.subset == *subset) {
                return 0;
            }
        }
        let per_shard = self
            .capacity
            .load(Ordering::Relaxed)
            .div_ceil(SHARDS)
            .max(1);
        let mut dropped = 0u64;
        if guard.entries >= per_shard {
            dropped = guard.entries as u64;
            guard.buckets.clear();
            guard.entries = 0;
        }
        let entry = ArenaEntry {
            subset: subset.clone(),
            eval,
            epoch: self.epoch(),
            weights_version: self.weights_version(),
        };
        guard.buckets.entry(key).or_default().push(entry);
        guard.entries += 1;
        dropped
    }

    /// Fills in a recomputed match part on a previously stripped entry.
    /// Keeps the entry's original epoch stamp (it is still a
    /// cross-iteration survivor) and only writes if the slot is still
    /// empty — a racing duplicate recompute produced the same value.
    pub(crate) fn restore_match_part(&self, key: u64, subset: &Subset, part: MatchPart) {
        let mut guard = unpoison(self.shards[shard_index(key)].write());
        if let Some(bucket) = guard.buckets.get_mut(&key) {
            if let Some(entry) = bucket.iter_mut().find(|e| e.subset == *subset) {
                if entry.eval.match_part.is_none() {
                    entry.eval.match_part = Some(part);
                }
            }
        }
    }
}

/// A structural 64-bit key of a mediated schema: a SplitMix64-style mix of
/// every GA's attribute ids in the schema's canonical order. Equal schemas
/// always produce equal keys; the converse holds up to hash collision,
/// which is acceptable for the change-detection uses this key serves (it
/// never substitutes for schema equality in a correctness path).
pub(crate) fn schema_key(schema: &MediatedSchema) -> u64 {
    let mut h = 0x9e37_79b9_7f4a_7c15_u64;
    for ga in schema.gas() {
        // GA boundary marker, so [a|b][c] and [a][b|c] hash differently.
        h = mix(h ^ 0xd1b5_4a32_d192_ed03);
        for attr in ga.attrs() {
            h = mix(h ^ (u64::from(attr.source.0) << 32 | u64::from(attr.index)));
        }
    }
    h
}

/// SplitMix64 finalizer.
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mube_qef::Weights;
    use mube_schema::{AttrId, GlobalAttribute, SourceId};

    fn spec() -> ProblemSpec {
        ProblemSpec::new(5)
    }

    fn entry_eval(q: f64) -> ComponentEval {
        ComponentEval {
            match_part: Some(MatchPart::Feasible {
                quality: q,
                schema_key: 1,
                spanned: vec![1, 4],
            }),
            components: vec![0.0, 0.5],
        }
    }

    #[test]
    fn classify_weights_only() {
        let a = spec();
        let b = spec().with_weights(
            Weights::new([
                ("matching", 0.5),
                ("cardinality", 0.2),
                ("coverage", 0.1),
                ("redundancy", 0.1),
                ("mttf", 0.1),
            ])
            .unwrap(),
        );
        assert_eq!(SpecDelta::classify(&a, &b), SpecDelta::WeightsOnly);
        assert_eq!(SpecDelta::classify(&a, &a.clone()), SpecDelta::Unchanged);
    }

    #[test]
    fn classify_feasibility_only() {
        let a = spec();
        let b = spec().with_source_constraint(SourceId(2));
        assert_eq!(SpecDelta::classify(&a, &b), SpecDelta::FeasibilityOnly);
        let c = ProblemSpec::new(7);
        assert_eq!(SpecDelta::classify(&a, &c), SpecDelta::FeasibilityOnly);
    }

    #[test]
    fn classify_match_invalidating() {
        let a = spec();
        let theta = spec().with_theta(0.5);
        assert_eq!(
            SpecDelta::classify(&a, &theta),
            SpecDelta::MatchInvalidating
        );
        let beta = spec().with_beta(3);
        assert_eq!(SpecDelta::classify(&a, &beta), SpecDelta::MatchInvalidating);
        let ga = spec().with_ga_constraint(
            GlobalAttribute::new([AttrId::new(SourceId(0), 0), AttrId::new(SourceId(1), 0)])
                .unwrap(),
        );
        assert_eq!(SpecDelta::classify(&a, &ga), SpecDelta::MatchInvalidating);
        // Changing the weighted QEF *set* relays the vectors: strongest class.
        let names = spec().with_weights(Weights::new([("matching", 1.0)]).unwrap());
        assert_eq!(
            SpecDelta::classify(&a, &names),
            SpecDelta::MatchInvalidating
        );
    }

    #[test]
    fn classify_precedence_strongest_wins() {
        let a = spec();
        let b = spec()
            .with_theta(0.6)
            .with_source_constraint(SourceId(1))
            .with_weights(
                Weights::new([
                    ("matching", 0.5),
                    ("cardinality", 0.2),
                    ("coverage", 0.1),
                    ("redundancy", 0.1),
                    ("mttf", 0.1),
                ])
                .unwrap(),
            );
        assert_eq!(SpecDelta::classify(&a, &b), SpecDelta::MatchInvalidating);
        let c = spec().with_source_constraint(SourceId(1)).with_weights(
            Weights::new([
                ("matching", 0.5),
                ("cardinality", 0.2),
                ("coverage", 0.1),
                ("redundancy", 0.1),
                ("mttf", 0.1),
            ])
            .unwrap(),
        );
        assert_eq!(SpecDelta::classify(&a, &c), SpecDelta::FeasibilityOnly);
    }

    #[test]
    fn prepare_first_use_reports_no_delta() {
        let arena = EvalArena::new();
        assert_eq!(arena.prepare(&spec(), 10), None);
        assert_eq!(arena.last_delta(), None);
        assert_eq!(arena.last_invalidated(), 0);
        assert_eq!(arena.epoch(), 1);
    }

    #[test]
    fn prepare_weights_only_keeps_entries_and_bumps_version() {
        let arena = EvalArena::new();
        arena.prepare(&spec(), 10);
        let s = Subset::from_indices(10, [1, 2]);
        arena.insert(s.fingerprint(), &s, entry_eval(0.9));
        let v0 = arena.weights_version();
        let reweighted = spec().with_weights(
            Weights::new([
                ("matching", 0.5),
                ("cardinality", 0.2),
                ("coverage", 0.1),
                ("redundancy", 0.1),
                ("mttf", 0.1),
            ])
            .unwrap(),
        );
        assert_eq!(arena.prepare(&reweighted, 10), Some(SpecDelta::WeightsOnly));
        assert_eq!(arena.len(), 1);
        assert_eq!(arena.last_invalidated(), 0);
        assert_eq!(arena.weights_version(), v0 + 1);
    }

    #[test]
    fn prepare_match_invalidating_strips_feasible_and_drops_infeasible() {
        let arena = EvalArena::new();
        arena.prepare(&spec(), 10);
        let a = Subset::from_indices(10, [1]);
        let b = Subset::from_indices(10, [2]);
        arena.insert(a.fingerprint(), &a, entry_eval(0.8));
        arena.insert(b.fingerprint(), &b, ComponentEval::infeasible());
        assert_eq!(arena.len(), 2);
        assert_eq!(
            arena.prepare(&spec().with_theta(0.5), 10),
            Some(SpecDelta::MatchInvalidating)
        );
        assert_eq!(arena.last_invalidated(), 2);
        // The feasible entry survives with its match part stripped; the
        // null-schema entry is gone.
        assert_eq!(arena.len(), 1);
        let stripped = arena
            .probe(a.fingerprint(), &a, |e| e.eval.match_part.clone())
            .expect("feasible entry survives");
        assert_eq!(stripped, None);
        assert!(arena.probe(b.fingerprint(), &b, |_| ()).is_none());
    }

    #[test]
    fn prepare_layout_change_clears_all() {
        let arena = EvalArena::new();
        arena.prepare(&spec(), 10);
        let s = Subset::from_indices(10, [3]);
        arena.insert(s.fingerprint(), &s, entry_eval(0.7));
        let renamed = spec().with_weights(Weights::new([("cardinality", 1.0)]).unwrap());
        assert_eq!(
            arena.prepare(&renamed, 10),
            Some(SpecDelta::MatchInvalidating)
        );
        assert!(arena.is_empty());
        assert_eq!(arena.last_invalidated(), 1);
    }

    #[test]
    fn prepare_universe_change_resets_cold() {
        let arena = EvalArena::new();
        arena.prepare(&spec(), 10);
        let s = Subset::from_indices(10, [3]);
        arena.insert(s.fingerprint(), &s, entry_eval(0.7));
        assert_eq!(arena.prepare(&spec(), 12), None);
        assert!(arena.is_empty());
        assert_eq!(arena.last_invalidated(), 1);
        assert_eq!(arena.last_delta(), None);
    }

    #[test]
    fn insert_is_idempotent_and_capacity_evicts() {
        let arena = EvalArena::new();
        arena.prepare(&spec(), 64);
        let s = Subset::from_indices(64, [1]);
        assert_eq!(arena.insert(s.fingerprint(), &s, entry_eval(0.1)), 0);
        assert_eq!(arena.insert(s.fingerprint(), &s, entry_eval(0.1)), 0);
        assert_eq!(arena.len(), 1);
        // Capacity of SHARDS means one entry per shard: the next insert
        // into the same shard clears it first.
        arena.set_capacity(SHARDS);
        let mut dropped_total = 0u64;
        for i in 2..40 {
            let t = Subset::from_indices(64, [i]);
            dropped_total += arena.insert(t.fingerprint(), &t, entry_eval(0.2));
        }
        assert!(dropped_total > 0, "tiny capacity must evict");
    }

    #[test]
    fn restore_match_part_fills_only_empty_slots() {
        let arena = EvalArena::new();
        arena.prepare(&spec(), 10);
        let s = Subset::from_indices(10, [1, 4]);
        let key = s.fingerprint();
        arena.insert(key, &s, entry_eval(0.9));
        arena.prepare(&spec().with_theta(0.6), 10); // strips the match part
        arena.restore_match_part(
            key,
            &s,
            MatchPart::Feasible {
                quality: 0.4,
                schema_key: 9,
                spanned: vec![1, 4],
            },
        );
        let part = arena
            .probe(key, &s, |e| e.eval.match_part.clone())
            .flatten();
        assert_eq!(
            part,
            Some(MatchPart::Feasible {
                quality: 0.4,
                schema_key: 9,
                spanned: vec![1, 4],
            })
        );
        // A second restore is a no-op: the slot is taken.
        arena.restore_match_part(
            key,
            &s,
            MatchPart::Feasible {
                quality: 0.5,
                schema_key: 10,
                spanned: vec![4],
            },
        );
        let part = arena
            .probe(key, &s, |e| e.eval.match_part.clone())
            .flatten();
        assert_eq!(
            part,
            Some(MatchPart::Feasible {
                quality: 0.4,
                schema_key: 9,
                spanned: vec![1, 4],
            })
        );
    }

    #[test]
    fn schema_keys_distinguish_grouping() {
        let a1 = AttrId::new(SourceId(0), 0);
        let a2 = AttrId::new(SourceId(1), 0);
        let a3 = AttrId::new(SourceId(2), 0);
        let joint = MediatedSchema::new([
            GlobalAttribute::new([a1, a2]).unwrap(),
            GlobalAttribute::new([a3]).unwrap(),
        ]);
        let split = MediatedSchema::new([
            GlobalAttribute::new([a1]).unwrap(),
            GlobalAttribute::new([a2, a3]).unwrap(),
        ]);
        assert_ne!(schema_key(&joint), schema_key(&split));
        assert_eq!(schema_key(&joint), schema_key(&joint.clone()));
    }
}
