//! The per-iteration problem specification.

use mube_cluster::MatchConfig;
use mube_qef::Weights;
use mube_schema::{Constraints, GaConstraint, SourceId};

/// Everything the user edits between µBE iterations: weights, constraints,
/// the source budget `m`, and the matching parameters θ and β.
///
/// "The user can specify new constraints on sources and mediated schema
/// attributes to include, set new weights for the quality metrics, and
/// define new quality metrics. µBE solves this new optimization problem,
/// and the iterative feedback process continues."
#[derive(Debug, Clone)]
pub struct ProblemSpec {
    /// QEF weights (`W`). Names bind to the `"matching"` QEF, a registered
    /// QEF, or a source characteristic.
    pub weights: Weights,
    /// Source and GA constraints (`C` and `G`).
    pub constraints: Constraints,
    /// Maximum number of sources to select (`m`).
    pub max_sources: usize,
    /// Matching parameters: θ, β, linkage, pruning.
    pub match_config: MatchConfig,
    /// Bound on the objective's `Q(S)` memo cache, in entries across all
    /// shards (`None` keeps the default, roughly a million). Long-running
    /// sessions on large universes set this to cap memory; eviction is
    /// counted in [`crate::SolveStats::evictions`].
    pub cache_capacity: Option<usize>,
}

impl ProblemSpec {
    /// A spec with the paper's default weights and matching configuration,
    /// choosing at most `max_sources` sources, no constraints.
    pub fn new(max_sources: usize) -> Self {
        Self {
            weights: Weights::paper_defaults(),
            constraints: Constraints::none(),
            max_sources,
            match_config: MatchConfig::default(),
            cache_capacity: None,
        }
    }

    /// Bounds the objective memo cache to roughly `capacity` entries
    /// (builder style).
    pub fn with_cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = Some(capacity);
        self
    }

    /// Sets the weights (builder style).
    pub fn with_weights(mut self, weights: Weights) -> Self {
        self.weights = weights;
        self
    }

    /// Adds a source constraint (builder style).
    pub fn with_source_constraint(mut self, id: SourceId) -> Self {
        self.constraints.require_source(id);
        self
    }

    /// Adds a GA constraint (builder style).
    pub fn with_ga_constraint(mut self, ga: GaConstraint) -> Self {
        self.constraints.require_ga(ga);
        self
    }

    /// Sets the matching threshold θ (builder style).
    pub fn with_theta(mut self, theta: f64) -> Self {
        self.match_config.theta = theta;
        self
    }

    /// Sets the minimum GA size β (builder style).
    pub fn with_beta(mut self, beta: usize) -> Self {
        self.match_config.beta = beta;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mube_schema::{AttrId, GlobalAttribute};

    #[test]
    fn builder_style_composes() {
        let ga = GlobalAttribute::new([AttrId::new(SourceId(1), 0)]).unwrap();
        let spec = ProblemSpec::new(20)
            .with_theta(0.6)
            .with_beta(2)
            .with_source_constraint(SourceId(3))
            .with_ga_constraint(ga.clone());
        assert_eq!(spec.max_sources, 20);
        assert_eq!(spec.match_config.theta, 0.6);
        assert_eq!(spec.match_config.beta, 2);
        assert!(spec.constraints.sources().contains(&SourceId(3)));
        assert_eq!(spec.constraints.gas(), &[ga]);
        // Implied source from the GA constraint.
        assert!(spec.constraints.required_sources().contains(&SourceId(1)));
    }

    #[test]
    fn defaults_match_paper() {
        let spec = ProblemSpec::new(10);
        assert_eq!(spec.match_config.theta, 0.75);
        assert_eq!(spec.weights.get("matching"), 0.25);
        assert!(spec.constraints.is_empty());
    }
}
