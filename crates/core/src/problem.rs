//! The per-iteration problem specification.

use mube_cluster::MatchConfig;
use mube_qef::Weights;
use mube_schema::{Constraints, GaConstraint, SourceId};

/// Tuning for the sparse similarity backend (see [`SimBackend::Sparse`]).
#[derive(Debug, Clone, PartialEq)]
pub struct SparseOptions {
    /// Score threshold for threshold-aware blocking: pairs below τ are
    /// pruned and read back as `0.0`. `None` (the default) keeps the
    /// lossless tier, bit-identical to the dense matrix. Only set this to
    /// the spec's θ, and only when Match runs Single/Complete linkage with
    /// no GA constraints — see `DESIGN.md` §14 for the exactness condition.
    pub tau: Option<f64>,
    /// Triples buffered in memory by the pair store before a sorted run is
    /// cut (see [`mube_similarity::SpillConfig`]).
    pub max_buffered_triples: usize,
    /// Directory for spill runs during the build. `None` keeps runs in
    /// memory.
    pub spill_dir: Option<std::path::PathBuf>,
}

impl Default for SparseOptions {
    fn default() -> Self {
        Self {
            tau: None,
            max_buffered_triples: mube_similarity::spill::DEFAULT_BUFFERED_TRIPLES,
            spill_dir: None,
        }
    }
}

/// Which attribute-similarity backend the engine builds.
///
/// This is a [`crate::MubeBuilder`] knob, not a [`ProblemSpec`] field: the
/// backend is part of the engine's iteration-independent precomputation
/// (like the measure and the sketches), chosen once per universe. Putting
/// it on the spec would force the session delta classifier to treat a
/// backend flip as yet another invalidation class for no benefit — specs
/// vary per iteration, the similarity store does not.
#[derive(Debug, Clone, PartialEq)]
pub enum SimBackend {
    /// Always build the dense packed triangle, whatever its size.
    Dense,
    /// Always build the sparse blocked backend (requires an n-gram set
    /// measure; fails on others).
    Sparse(
        /// Sparse build tuning.
        SparseOptions,
    ),
    /// Build dense when the packed triangle fits `budget_bytes`, otherwise
    /// fall back to the lossless sparse tier when the measure supports
    /// blocking (n-gram set measures), and to dense regardless when it does
    /// not (a non-blockable measure has no sparse representation — the
    /// pre-existing allocate-and-hope behaviour, now taken knowingly).
    Auto {
        /// Dense-triangle budget in bytes (default 256 MiB ≈ 11.5k distinct
        /// names).
        budget_bytes: u64,
    },
}

impl SimBackend {
    /// The default auto budget: 256 MiB of packed `f32` triangle.
    pub const DEFAULT_BUDGET_BYTES: u64 = 256 * 1024 * 1024;
}

impl Default for SimBackend {
    /// Auto-routing under [`SimBackend::DEFAULT_BUDGET_BYTES`].
    fn default() -> Self {
        SimBackend::Auto {
            budget_bytes: Self::DEFAULT_BUDGET_BYTES,
        }
    }
}

/// Everything the user edits between µBE iterations: weights, constraints,
/// the source budget `m`, and the matching parameters θ and β.
///
/// "The user can specify new constraints on sources and mediated schema
/// attributes to include, set new weights for the quality metrics, and
/// define new quality metrics. µBE solves this new optimization problem,
/// and the iterative feedback process continues."
#[derive(Debug, Clone)]
pub struct ProblemSpec {
    /// QEF weights (`W`). Names bind to the `"matching"` QEF, a registered
    /// QEF, or a source characteristic.
    pub weights: Weights,
    /// Source and GA constraints (`C` and `G`).
    pub constraints: Constraints,
    /// Maximum number of sources to select (`m`).
    pub max_sources: usize,
    /// Matching parameters: θ, β, linkage, pruning.
    pub match_config: MatchConfig,
    /// Bound on the objective's `Q(S)` memo cache, in entries across all
    /// shards (`None` keeps the default, roughly a million). Long-running
    /// sessions on large universes set this to cap memory; eviction is
    /// counted in [`crate::SolveStats::evictions`].
    pub cache_capacity: Option<usize>,
}

impl ProblemSpec {
    /// A spec with the paper's default weights and matching configuration,
    /// choosing at most `max_sources` sources, no constraints.
    pub fn new(max_sources: usize) -> Self {
        Self {
            weights: Weights::paper_defaults(),
            constraints: Constraints::none(),
            max_sources,
            match_config: MatchConfig::default(),
            cache_capacity: None,
        }
    }

    /// Bounds the objective memo cache to roughly `capacity` entries
    /// (builder style).
    pub fn with_cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = Some(capacity);
        self
    }

    /// Sets the weights (builder style).
    pub fn with_weights(mut self, weights: Weights) -> Self {
        self.weights = weights;
        self
    }

    /// Adds a source constraint (builder style).
    pub fn with_source_constraint(mut self, id: SourceId) -> Self {
        self.constraints.require_source(id);
        self
    }

    /// Adds a GA constraint (builder style).
    pub fn with_ga_constraint(mut self, ga: GaConstraint) -> Self {
        self.constraints.require_ga(ga);
        self
    }

    /// Sets the matching threshold θ (builder style).
    pub fn with_theta(mut self, theta: f64) -> Self {
        self.match_config.theta = theta;
        self
    }

    /// Sets the minimum GA size β (builder style).
    pub fn with_beta(mut self, beta: usize) -> Self {
        self.match_config.beta = beta;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mube_schema::{AttrId, GlobalAttribute};

    #[test]
    fn builder_style_composes() {
        let ga = GlobalAttribute::new([AttrId::new(SourceId(1), 0)]).unwrap();
        let spec = ProblemSpec::new(20)
            .with_theta(0.6)
            .with_beta(2)
            .with_source_constraint(SourceId(3))
            .with_ga_constraint(ga.clone());
        assert_eq!(spec.max_sources, 20);
        assert_eq!(spec.match_config.theta, 0.6);
        assert_eq!(spec.match_config.beta, 2);
        assert!(spec.constraints.sources().contains(&SourceId(3)));
        assert_eq!(spec.constraints.gas(), &[ga]);
        // Implied source from the GA constraint.
        assert!(spec.constraints.required_sources().contains(&SourceId(1)));
    }

    #[test]
    fn defaults_match_paper() {
        let spec = ProblemSpec::new(10);
        assert_eq!(spec.match_config.theta, 0.75);
        assert_eq!(spec.weights.get("matching"), 0.25);
        assert!(spec.constraints.is_empty());
    }
}
