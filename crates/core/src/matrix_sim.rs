//! Universe-wide precomputed attribute similarity.

use mube_cluster::AttrSimilarity;
use mube_schema::attribute::normalize_name;
use mube_schema::{AttrId, Universe};
use mube_similarity::{
    SimilarityMatrix, SimilarityMeasure, SparseBuildStats, SparseConfig, SparseSimilarity,
    SpillConfig,
};

use crate::error::MubeError;
use crate::problem::{SimBackend, SparseOptions};

/// Which storage a [`MatrixSimilarity`] resolved to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimBackendKind {
    /// Packed `f32` triangle over all distinct-name pairs.
    Dense,
    /// Blocked CSR over shared-gram pairs with implicit-zero misses.
    Sparse,
}

/// The resolved similarity store.
#[derive(Debug, Clone)]
enum Backend {
    Dense(SimilarityMatrix),
    Sparse(SparseSimilarity),
}

/// All-pairs attribute similarity for one universe, computed once and shared
/// by every `Match(S)` call the optimizer makes.
///
/// Internally this flattens all attributes into one index space (source
/// order, then attribute order) and delegates to either the dense
/// [`mube_similarity::SimilarityMatrix`] or the blocked
/// [`mube_similarity::SparseSimilarity`] — both deduplicate identical
/// normalized names into the same first-seen slot order, so the
/// [`AttrSimilarity::class_of`] classes are backend-independent. On the
/// sparse lossless tier every lookup is bit-identical to the dense matrix;
/// the sparse backend additionally exposes per-class non-zero neighbor
/// lists that the incremental Match kernel uses to skip the quadratic seed
/// sweep.
#[derive(Debug, Clone)]
pub struct MatrixSimilarity {
    backend: Backend,
    /// Per source id: the flat index of its first attribute.
    offsets: Vec<u32>,
}

/// Flattens a universe's normalized attribute names plus per-source offsets.
fn flatten_names(universe: &Universe) -> (Vec<String>, Vec<u32>) {
    let mut offsets = Vec::with_capacity(universe.len());
    let mut names: Vec<String> = Vec::with_capacity(universe.total_attrs());
    for source in universe.sources() {
        offsets.push(names.len() as u32);
        for attr in source.attributes() {
            names.push(normalize_name(attr));
        }
    }
    (names, offsets)
}

impl MatrixSimilarity {
    /// Precomputes the dense matrix for `universe` under `measure` — the
    /// historical constructor, unconditionally dense.
    pub fn new(universe: &Universe, measure: &dyn SimilarityMeasure) -> Self {
        let (names, offsets) = flatten_names(universe);
        Self {
            backend: Backend::Dense(SimilarityMatrix::compute(&names, measure)),
            offsets,
        }
    }

    /// Precomputes the similarity store under an explicit backend policy.
    ///
    /// `Auto` routes on the dense triangle's size: within budget builds
    /// dense; over budget builds the lossless sparse tier when `measure`
    /// declares a [`mube_similarity::GramSpec`], and falls back to dense
    /// otherwise (non-blockable measures have no sparse representation).
    pub fn with_backend(
        universe: &Universe,
        measure: &dyn SimilarityMeasure,
        backend: &SimBackend,
    ) -> Result<Self, MubeError> {
        let (names, offsets) = flatten_names(universe);
        let backend = match backend {
            SimBackend::Dense => Backend::Dense(SimilarityMatrix::compute(&names, measure)),
            SimBackend::Sparse(opts) => Backend::Sparse(build_sparse(&names, measure, opts)?),
            SimBackend::Auto { budget_bytes } => {
                match SimilarityMatrix::try_compute(&names, measure, *budget_bytes) {
                    Ok(dense) => Backend::Dense(dense),
                    Err(_) if measure.gram_spec().is_some() => {
                        Backend::Sparse(build_sparse(&names, measure, &SparseOptions::default())?)
                    }
                    Err(_) => Backend::Dense(SimilarityMatrix::compute(&names, measure)),
                }
            }
        };
        Ok(Self { backend, offsets })
    }

    fn flat(&self, attr: AttrId) -> usize {
        self.offsets[attr.source.index()] as usize + attr.index as usize
    }

    /// Which storage the constructor resolved to.
    pub fn backend_kind(&self) -> SimBackendKind {
        match &self.backend {
            Backend::Dense(_) => SimBackendKind::Dense,
            Backend::Sparse(_) => SimBackendKind::Sparse,
        }
    }

    /// The sparse build's blocking counters, when the sparse backend is
    /// active.
    pub fn sparse_stats(&self) -> Option<&SparseBuildStats> {
        match &self.backend {
            Backend::Dense(_) => None,
            Backend::Sparse(s) => Some(s.stats()),
        }
    }

    /// Number of attributes covered.
    pub fn len(&self) -> usize {
        match &self.backend {
            Backend::Dense(m) => m.len(),
            Backend::Sparse(s) => s.len(),
        }
    }

    /// Whether the universe had no attributes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Builds the sparse backend, wrapping its error for [`MubeError`].
fn build_sparse(
    names: &[String],
    measure: &dyn SimilarityMeasure,
    opts: &SparseOptions,
) -> Result<SparseSimilarity, MubeError> {
    let config = SparseConfig {
        tau: opts.tau,
        spill: SpillConfig {
            max_buffered_triples: opts.max_buffered_triples,
            dir: opts.spill_dir.clone(),
        },
    };
    SparseSimilarity::build(names, measure, &config).map_err(|e| MubeError::SimBackend {
        reason: e.to_string(),
    })
}

impl AttrSimilarity for MatrixSimilarity {
    fn similarity(&self, a: AttrId, b: AttrId) -> f64 {
        match &self.backend {
            Backend::Dense(m) => m.similarity(self.flat(a), self.flat(b)),
            Backend::Sparse(s) => s.similarity(self.flat(a), self.flat(b)),
        }
    }

    /// The distinct normalized name's slot. Every lookup in either backend
    /// resolves through the slot, so equal slots satisfy the trait's
    /// bitwise-identity contract by construction — and both backends assign
    /// slots in the same first-seen order.
    fn class_of(&self, attr: AttrId) -> Option<u32> {
        match &self.backend {
            Backend::Dense(m) => Some(m.distinct_slot(self.flat(attr))),
            Backend::Sparse(s) => Some(s.distinct_slot(self.flat(attr))),
        }
    }

    /// Sparse backend only: the sorted distinct slots with a stored
    /// similarity to `class`. Absent pairs read back as exactly `0.0` from
    /// [`AttrSimilarity::similarity`], which is precisely the trait's
    /// neighbor contract — the dense backend stays `None` and kernels keep
    /// their full sweeps.
    fn neighbors_of_class(&self, class: u32) -> Option<&[u32]> {
        match &self.backend {
            Backend::Dense(_) => None,
            Backend::Sparse(s) => Some(s.neighbor_slots(class)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mube_cluster::MeasureAdapter;
    use mube_schema::{SourceBuilder, SourceId};
    use mube_similarity::{NgramJaccard, NormalizedLevenshtein};

    fn universe() -> Universe {
        let mut u = Universe::new();
        u.add_source(SourceBuilder::new("a").attributes(["Author", "Title", "ISBN"]))
            .unwrap();
        u.add_source(SourceBuilder::new("b").attributes(["author name", "keyword"]))
            .unwrap();
        u.add_source(SourceBuilder::new("c").attributes(["title"]))
            .unwrap();
        u
    }

    #[test]
    fn agrees_with_on_the_fly_adapter() {
        let u = universe();
        let m = NgramJaccard::default();
        let matrix = MatrixSimilarity::new(&u, &m);
        let adapter = MeasureAdapter::new(&u, &m);
        let attrs: Vec<AttrId> = u.all_attrs().collect();
        for &a in &attrs {
            for &b in &attrs {
                let expect = adapter.similarity(a, b);
                let got = matrix.similarity(a, b);
                assert!((expect - got).abs() < 1e-6, "{a} vs {b}: {expect} vs {got}");
            }
        }
    }

    #[test]
    fn identical_normalized_names_are_fully_similar() {
        let u = universe();
        let matrix = MatrixSimilarity::new(&u, &NgramJaccard::default());
        // "Title" (0,1) vs "title" (2,0).
        assert_eq!(
            matrix.similarity(AttrId::new(SourceId(0), 1), AttrId::new(SourceId(2), 0)),
            1.0
        );
    }

    #[test]
    fn len_counts_attrs() {
        let u = universe();
        let matrix = MatrixSimilarity::new(&u, &NgramJaccard::default());
        assert_eq!(matrix.len(), 6);
        assert!(!matrix.is_empty());
        assert_eq!(matrix.backend_kind(), SimBackendKind::Dense);
        assert!(matrix.sparse_stats().is_none());
    }

    #[test]
    fn sparse_backend_is_bit_identical_to_dense() {
        let u = universe();
        let m = NgramJaccard::default();
        let dense = MatrixSimilarity::new(&u, &m);
        let sparse =
            MatrixSimilarity::with_backend(&u, &m, &SimBackend::Sparse(SparseOptions::default()))
                .unwrap();
        assert_eq!(sparse.backend_kind(), SimBackendKind::Sparse);
        assert!(sparse.sparse_stats().is_some());
        let attrs: Vec<AttrId> = u.all_attrs().collect();
        for &a in &attrs {
            for &b in &attrs {
                assert_eq!(
                    sparse.similarity(a, b).to_bits(),
                    dense.similarity(a, b).to_bits(),
                    "{a} vs {b}"
                );
                assert_eq!(sparse.class_of(a), dense.class_of(a));
            }
        }
    }

    #[test]
    fn auto_routes_on_the_budget() {
        let u = universe();
        let m = NgramJaccard::default();
        // 5 distinct names ("Title"/"title" dedup) -> 10 entries -> 40 bytes.
        let within =
            MatrixSimilarity::with_backend(&u, &m, &SimBackend::Auto { budget_bytes: 40 }).unwrap();
        assert_eq!(within.backend_kind(), SimBackendKind::Dense);
        let over =
            MatrixSimilarity::with_backend(&u, &m, &SimBackend::Auto { budget_bytes: 39 }).unwrap();
        assert_eq!(over.backend_kind(), SimBackendKind::Sparse);
        let attrs: Vec<AttrId> = u.all_attrs().collect();
        for &a in &attrs {
            for &b in &attrs {
                assert_eq!(
                    over.similarity(a, b).to_bits(),
                    within.similarity(a, b).to_bits()
                );
            }
        }
    }

    #[test]
    fn auto_with_non_blockable_measure_stays_dense() {
        let u = universe();
        let m = NormalizedLevenshtein;
        let sim =
            MatrixSimilarity::with_backend(&u, &m, &SimBackend::Auto { budget_bytes: 0 }).unwrap();
        assert_eq!(sim.backend_kind(), SimBackendKind::Dense);
    }

    #[test]
    fn explicit_sparse_with_non_blockable_measure_errors() {
        let u = universe();
        let m = NormalizedLevenshtein;
        let err =
            MatrixSimilarity::with_backend(&u, &m, &SimBackend::Sparse(SparseOptions::default()));
        assert!(matches!(err, Err(MubeError::SimBackend { .. })));
    }

    #[test]
    fn neighbor_lists_match_the_trait_contract() {
        let u = universe();
        let m = NgramJaccard::default();
        let dense = MatrixSimilarity::new(&u, &m);
        let sparse =
            MatrixSimilarity::with_backend(&u, &m, &SimBackend::Sparse(SparseOptions::default()))
                .unwrap();
        assert!(dense.neighbors_of_class(0).is_none());
        let attrs: Vec<AttrId> = u.all_attrs().collect();
        for &a in &attrs {
            for &b in &attrs {
                let (ca, cb) = (sparse.class_of(a).unwrap(), sparse.class_of(b).unwrap());
                if ca == cb {
                    continue;
                }
                let listed = sparse.neighbors_of_class(ca).unwrap().contains(&cb);
                if listed {
                    assert!(sparse.neighbors_of_class(cb).unwrap().contains(&ca));
                } else {
                    assert_eq!(sparse.similarity(a, b), 0.0, "{a} vs {b}");
                }
            }
        }
    }
}
