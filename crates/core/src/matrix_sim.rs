//! Universe-wide precomputed attribute similarity.

use mube_cluster::AttrSimilarity;
use mube_schema::attribute::normalize_name;
use mube_schema::{AttrId, Universe};
use mube_similarity::{SimilarityMatrix, SimilarityMeasure};

/// All-pairs attribute similarity for one universe, computed once and shared
/// by every `Match(S)` call the optimizer makes.
///
/// Internally this flattens all attributes into one index space (source
/// order, then attribute order) and delegates to
/// [`mube_similarity::SimilarityMatrix`], which deduplicates identical
/// normalized names.
#[derive(Debug, Clone)]
pub struct MatrixSimilarity {
    matrix: SimilarityMatrix,
    /// Per source id: the flat index of its first attribute.
    offsets: Vec<u32>,
}

impl MatrixSimilarity {
    /// Precomputes the matrix for `universe` under `measure`.
    pub fn new(universe: &Universe, measure: &dyn SimilarityMeasure) -> Self {
        let mut offsets = Vec::with_capacity(universe.len());
        let mut names: Vec<String> = Vec::with_capacity(universe.total_attrs());
        for source in universe.sources() {
            offsets.push(names.len() as u32);
            for attr in source.attributes() {
                names.push(normalize_name(attr));
            }
        }
        Self {
            matrix: SimilarityMatrix::compute(&names, measure),
            offsets,
        }
    }

    fn flat(&self, attr: AttrId) -> usize {
        self.offsets[attr.source.index()] as usize + attr.index as usize
    }

    /// Number of attributes covered.
    pub fn len(&self) -> usize {
        self.matrix.len()
    }

    /// Whether the universe had no attributes.
    pub fn is_empty(&self) -> bool {
        self.matrix.is_empty()
    }
}

impl AttrSimilarity for MatrixSimilarity {
    fn similarity(&self, a: AttrId, b: AttrId) -> f64 {
        self.matrix.similarity(self.flat(a), self.flat(b))
    }

    /// The distinct normalized name's slot. Every lookup in this matrix
    /// resolves through the slot, so equal slots satisfy the trait's
    /// bitwise-identity contract by construction.
    fn class_of(&self, attr: AttrId) -> Option<u32> {
        Some(self.matrix.distinct_slot(self.flat(attr)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mube_cluster::MeasureAdapter;
    use mube_schema::{SourceBuilder, SourceId};
    use mube_similarity::NgramJaccard;

    fn universe() -> Universe {
        let mut u = Universe::new();
        u.add_source(SourceBuilder::new("a").attributes(["Author", "Title", "ISBN"]))
            .unwrap();
        u.add_source(SourceBuilder::new("b").attributes(["author name", "keyword"]))
            .unwrap();
        u.add_source(SourceBuilder::new("c").attributes(["title"]))
            .unwrap();
        u
    }

    #[test]
    fn agrees_with_on_the_fly_adapter() {
        let u = universe();
        let m = NgramJaccard::default();
        let matrix = MatrixSimilarity::new(&u, &m);
        let adapter = MeasureAdapter::new(&u, &m);
        let attrs: Vec<AttrId> = u.all_attrs().collect();
        for &a in &attrs {
            for &b in &attrs {
                let expect = adapter.similarity(a, b);
                let got = matrix.similarity(a, b);
                assert!((expect - got).abs() < 1e-6, "{a} vs {b}: {expect} vs {got}");
            }
        }
    }

    #[test]
    fn identical_normalized_names_are_fully_similar() {
        let u = universe();
        let matrix = MatrixSimilarity::new(&u, &NgramJaccard::default());
        // "Title" (0,1) vs "title" (2,0).
        assert_eq!(
            matrix.similarity(AttrId::new(SourceId(0), 1), AttrId::new(SourceId(2), 0)),
            1.0
        );
    }

    #[test]
    fn len_counts_attrs() {
        let u = universe();
        let matrix = MatrixSimilarity::new(&u, &NgramJaccard::default());
        assert_eq!(matrix.len(), 6);
        assert!(!matrix.is_empty());
    }
}
