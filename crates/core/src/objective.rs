//! The composite objective `Q(S)` as a subset-selection problem.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError, RwLock};

use mube_cluster::{match_sources, MatchConfig, MatchOutcome, MatchStats};
use mube_opt::{Subset, SubsetProblem};
use mube_qef::{CharacteristicQef, Qef, QefContext};
use mube_schema::{Constraints, SourceId, SourceSelection, Universe};

use crate::matrix_sim::MatrixSimilarity;

/// A weight bound to the function it scales.
pub(crate) enum QefBinding<'a> {
    /// The `F1` matching-quality QEF (computed via `Match(S)`).
    Matching,
    /// A QEF registered on the engine.
    Registered(&'a dyn Qef),
    /// An automatically derived source-characteristic QEF.
    Characteristic(CharacteristicQef),
}

/// Memo-cache shards. Sixteen is plenty: the batched solvers run at most a
/// few dozen worker threads, and the shard index comes from high fingerprint
/// bits, so concurrent evaluations of a sampled neighborhood spread across
/// shards almost uniformly.
const SHARDS: usize = 16;

/// Default total memo-cache entry budget. An entry is one
/// `(Subset, f64)` pair — a few dozen bytes at µBE's universe sizes — so
/// the default bounds the cache at roughly a hundred megabytes while being
/// effectively unbounded for single solves (which evaluate tens of
/// thousands of subsets, not a million).
const DEFAULT_CACHE_CAPACITY: usize = 1 << 20;

/// One shard: fingerprint-keyed buckets plus the entry count (buckets may
/// hold several exact subsets on fingerprint collision, so the map's `len`
/// undercounts).
#[derive(Default)]
struct CacheShard {
    buckets: HashMap<u64, Vec<(Subset, f64)>>,
    entries: usize,
}

/// Recovers a lock guard from a poisoned lock: cache and counter state is
/// always internally consistent (every update completes under one guard),
/// so a panicking sibling thread must not wedge the evaluation.
fn unpoison<G>(r: Result<G, PoisonError<G>>) -> G {
    r.unwrap_or_else(PoisonError::into_inner)
}

/// `Q(S)` exposed through [`SubsetProblem`] so any `mube-opt` solver can
/// drive it. Evaluations are memoized by selection fingerprint — tabu search
/// revisits neighbourhoods constantly, and `Match(S)` dominates the cost of
/// an evaluation.
///
/// The objective is `Sync` and all interior state is thread-safe: the memo
/// cache is sharded behind [`RwLock`]s and the counters are atomic, so a
/// [`mube_opt::BatchEvaluator`] pool or a [`mube_opt::Portfolio`]'s member
/// threads can evaluate concurrently against *one* objective and share each
/// other's memoized `Match(S)` work.
pub struct MubeObjective<'a> {
    universe: &'a Universe,
    ctx: &'a QefContext<'a>,
    sim: &'a MatrixSimilarity,
    bindings: Vec<(f64, QefBinding<'a>)>,
    constraints: &'a Constraints,
    match_config: &'a MatchConfig,
    max_sources: usize,
    pinned: Vec<usize>,
    /// Memo cache, keyed by a precomputed 64-bit fingerprint of the subset
    /// so each lookup hashes the selection words exactly once. The bucket
    /// stores the subsets themselves and compares them exactly — a
    /// fingerprint collision lands in the same bucket but can never alias
    /// (aliasing would silently poison the search).
    cache: [RwLock<CacheShard>; SHARDS],
    /// Total entry budget across all shards; a shard that fills its slice
    /// of the budget is cleared wholesale (coarse, but eviction is a safety
    /// valve here, not a working-set policy — see `DEFAULT_CACHE_CAPACITY`).
    cache_capacity: AtomicUsize,
    caching: AtomicBool,
    match_calls: AtomicU64,
    cache_hits: AtomicU64,
    evictions: AtomicU64,
    match_stats: Mutex<MatchStats>,
}

/// The subset's hash, computed once per [`MubeObjective::evaluate`] call.
fn fingerprint(subset: &Subset) -> u64 {
    subset.fingerprint()
}

/// Which shard a fingerprint lives in. High bits, so the shard choice is
/// independent of the `HashMap`'s own low-bit bucketing.
fn shard_index(key: u64) -> usize {
    (key >> 60) as usize & (SHARDS - 1)
}

impl<'a> MubeObjective<'a> {
    pub(crate) fn new(
        universe: &'a Universe,
        ctx: &'a QefContext<'a>,
        sim: &'a MatrixSimilarity,
        bindings: Vec<(f64, QefBinding<'a>)>,
        constraints: &'a Constraints,
        match_config: &'a MatchConfig,
        max_sources: usize,
    ) -> Self {
        let mut pinned: Vec<usize> = constraints
            .required_sources()
            .into_iter()
            .map(SourceId::index)
            .collect();
        pinned.sort_unstable();
        Self {
            universe,
            ctx,
            sim,
            bindings,
            constraints,
            match_config,
            max_sources,
            pinned,
            cache: std::array::from_fn(|_| RwLock::new(CacheShard::default())),
            cache_capacity: AtomicUsize::new(DEFAULT_CACHE_CAPACITY),
            caching: AtomicBool::new(true),
            match_calls: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            match_stats: Mutex::new(MatchStats::default()),
        }
    }

    /// Enables or disables evaluation memoization. On by default; the
    /// `ablation_cache` experiment turns it off to measure how much work
    /// the cache saves the revisit-heavy tabu search.
    pub fn set_cache_enabled(&self, enabled: bool) {
        self.caching.store(enabled, Ordering::Relaxed);
        if !enabled {
            for shard in &self.cache {
                let mut guard = unpoison(shard.write());
                guard.buckets.clear();
                guard.entries = 0;
            }
        }
    }

    /// Bounds the memo cache to roughly `capacity` entries across all
    /// shards (minimum one entry per shard). A shard that exceeds its slice
    /// of the budget is cleared wholesale and the dropped entries are added
    /// to [`MubeObjective::evictions`].
    pub fn set_cache_capacity(&self, capacity: usize) {
        self.cache_capacity.store(capacity, Ordering::Relaxed);
    }

    /// Runs `Match(S)` for a set of source ids (uncached; used by the
    /// engine to reconstruct the winning schema).
    pub fn match_schema(&self, ids: &[SourceId]) -> Option<MatchOutcome> {
        match_sources(
            self.universe,
            ids,
            self.constraints,
            self.match_config,
            self.sim,
        )
    }

    /// Number of `Match(S)` invocations so far (cache misses).
    pub fn match_calls(&self) -> u64 {
        self.match_calls.load(Ordering::Relaxed)
    }

    /// Number of memoized evaluations served.
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits.load(Ordering::Relaxed)
    }

    /// Number of memoized entries dropped by capacity eviction.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Aggregated `Match(S)` work counters over every (uncached) objective
    /// evaluation so far.
    pub fn match_stats(&self) -> MatchStats {
        *unpoison(self.match_stats.lock())
    }

    /// Evaluates every component QEF for a selection, returning
    /// `(name, weight, value)` triples — used to report per-QEF values on
    /// the final solution.
    pub fn component_values(&self, ids: &[SourceId]) -> Vec<(String, f64, f64)> {
        let selection = SourceSelection::from_ids(self.universe.len(), ids.iter().copied());
        self.bindings
            .iter()
            .map(|(w, binding)| match binding {
                QefBinding::Matching => {
                    let quality = self.match_schema(ids).map_or(0.0, |o| o.quality);
                    ("matching".to_owned(), *w, quality)
                }
                QefBinding::Registered(qef) => (
                    qef.name().to_owned(),
                    *w,
                    qef.evaluate(&selection, self.ctx),
                ),
                QefBinding::Characteristic(qef) => (
                    qef.name().to_owned(),
                    *w,
                    qef.evaluate(&selection, self.ctx),
                ),
            })
            .collect()
    }

    fn compute(&self, subset: &Subset) -> f64 {
        let ids: Vec<SourceId> = subset.iter().map(|i| SourceId(i as u32)).collect();
        let selection = SourceSelection::from_ids(self.universe.len(), ids.iter().copied());
        let mut q = 0.0;
        for (w, binding) in &self.bindings {
            let value = match binding {
                QefBinding::Matching => {
                    self.match_calls.fetch_add(1, Ordering::Relaxed);
                    match self.match_schema(&ids) {
                        Some(outcome) => {
                            unpoison(self.match_stats.lock()).absorb(&outcome.stats);
                            outcome.quality
                        }
                        // Null schema: the source/GA constraints cannot be
                        // satisfied on this S — infeasible candidate.
                        None => return f64::NEG_INFINITY,
                    }
                }
                QefBinding::Registered(qef) => qef.evaluate(&selection, self.ctx),
                QefBinding::Characteristic(qef) => qef.evaluate(&selection, self.ctx),
            };
            debug_assert!(
                (0.0..=1.0 + 1e-9).contains(&value),
                "QEF out of range: {value}"
            );
            q += w * value;
        }
        q
    }
}

impl SubsetProblem for MubeObjective<'_> {
    fn universe_size(&self) -> usize {
        self.universe.len()
    }

    fn max_selected(&self) -> usize {
        self.max_sources
    }

    fn pinned(&self) -> &[usize] {
        &self.pinned
    }

    fn evaluate(&self, subset: &Subset) -> f64 {
        if !self.caching.load(Ordering::Relaxed) {
            return self.compute(subset);
        }
        // One hash of the subset per evaluation; both probes reuse the
        // already-computed u64 key, and the subset is cloned only when
        // actually inserted.
        let key = fingerprint(subset);
        let shard = &self.cache[shard_index(key)];
        {
            let guard = unpoison(shard.read());
            let hit = guard
                .buckets
                .get(&key)
                .and_then(|bucket| bucket.iter().find(|(s, _)| s == subset).map(|(_, v)| *v));
            if let Some(v) = hit {
                self.cache_hits.fetch_add(1, Ordering::Relaxed);
                return v;
            }
        }
        // Compute outside any lock: `Match(S)` is the expensive part and
        // other threads must keep hitting the shard meanwhile. Concurrent
        // first evaluations of the *same* subset may each compute it (both
        // get the same value — evaluation is pure); the write path below
        // re-probes so the bucket still stores it once.
        let v = self.compute(subset);
        let mut guard = unpoison(shard.write());
        if let Some(bucket) = guard.buckets.get(&key) {
            if bucket.iter().any(|(s, _)| s == subset) {
                return v;
            }
        }
        let per_shard = self
            .cache_capacity
            .load(Ordering::Relaxed)
            .div_ceil(SHARDS)
            .max(1);
        if guard.entries >= per_shard {
            let dropped = guard.entries;
            guard.buckets.clear();
            guard.entries = 0;
            self.evictions.fetch_add(dropped as u64, Ordering::Relaxed);
        }
        guard
            .buckets
            .entry(key)
            .or_default()
            .push((subset.clone(), v));
        guard.entries += 1;
        v
    }
}
