//! The composite objective `Q(S)` as a subset-selection problem.
//!
//! Since the delta-aware session core landed, the objective no longer
//! memoizes the scalar `Q(S)`: it memoizes the *component vector*
//! `[F_1(S) .. F_K(S)]` (an [`EvalArena`] entry) and applies the weight
//! combination at read time, in exactly the accumulation order the direct
//! computation uses — so cached and fresh values are bit-identical, and a
//! weights-only feedback edit recombines every surviving entry with zero
//! `Match(S)` calls.

use std::ops::Deref;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

use mube_cluster::{
    match_sources, match_sources_deferring_spans, MatchConfig, MatchOutcome, MatchStats,
};
use mube_opt::{CancelToken, LpConstraint, LpProblem, Relation, Subset, SubsetProblem};
use mube_qef::{CharacteristicQef, Qef};
use mube_schema::{Constraints, MediatedSchema, SourceId, SourceSelection};

use crate::arena::{schema_key, ComponentEval, EvalArena, MatchPart, SpecDelta};
use crate::snapshot::UniverseSnapshot;

/// A weight bound to the function it scales.
pub(crate) enum QefBinding {
    /// The `F1` matching-quality QEF (computed via `Match(S)`).
    Matching,
    /// A QEF registered on the engine, by index into the snapshot's QEF
    /// list (fixed at build time, so indices never dangle).
    Registered(usize),
    /// An automatically derived source-characteristic QEF.
    Characteristic(CharacteristicQef),
}

/// Recovers a lock guard from a poisoned lock: counter state is always
/// internally consistent (every update completes under one guard), so a
/// panicking sibling thread must not wedge the evaluation.
fn unpoison<G>(r: Result<G, PoisonError<G>>) -> G {
    r.unwrap_or_else(PoisonError::into_inner)
}

/// Sorted indices of the sources a schema spans — the constraint-free basis
/// the arena memoizes so the `C ⊆ spanned` validity check can run at read
/// time under whatever source constraints are then current.
fn spanned_of(schema: &MediatedSchema) -> Vec<u32> {
    schema.covered_sources().into_iter().map(|s| s.0).collect()
}

/// The evaluation arena an objective memoizes into: its own private arena
/// (one-shot solves) or a borrowed session arena that outlives the solve.
pub(crate) enum ArenaRef {
    /// A fresh arena owned by this objective — dropped with it.
    Owned(Box<EvalArena>),
    /// A session-owned arena shared across iterations (and across a
    /// portfolio's member solvers within one iteration).
    Shared(Arc<EvalArena>),
}

impl Deref for ArenaRef {
    type Target = EvalArena;

    fn deref(&self) -> &EvalArena {
        match self {
            ArenaRef::Owned(arena) => arena,
            ArenaRef::Shared(arena) => arena,
        }
    }
}

/// Additive slack on every upper bound the objective reports, covering
/// float summation-order differences between a bound computation and
/// [`MubeObjective::evaluate`]'s accumulation (each is a sum of `O(1)`
/// terms, so the true discrepancy is orders of magnitude below this).
/// Without it, a bound a few ulps under the true completion optimum could
/// prune the optimum away and break branch-and-bound exactness.
const BOUND_SLACK: f64 = 1e-9;

/// Per-binding admissible caps over the feasible completions of one
/// branch-and-bound node, plus the modular decompositions the LP
/// relaxation reuses.
struct BindingCaps {
    /// `caps[k] ≥ F_k(T)` for every feasible completion `T` — already the
    /// tightest available of the monotone / modular top-`k` /
    /// characteristic / trivial `1.0` caps for binding `k`.
    caps: Vec<f64>,
    /// `(binding index, per-source gains)` for each exactly-modular QEF.
    modular: Vec<(usize, Vec<f64>)>,
}

/// What an arena probe produced for a subset.
enum Probe {
    /// A complete evaluation: the combined `Q(S)` under current weights.
    Full(f64),
    /// A cross-iteration survivor whose match part was stripped by a
    /// `MatchInvalidating` edit: the non-matching components, cloned out so
    /// `Match(S)` alone can be recomputed outside the shard lock.
    Stale(Vec<f64>),
}

/// `Q(S)` exposed through [`SubsetProblem`] so any `mube-opt` solver can
/// drive it. Evaluations are memoized by selection fingerprint — tabu search
/// revisits neighbourhoods constantly, and `Match(S)` dominates the cost of
/// an evaluation.
///
/// The objective is `Sync` and all interior state is thread-safe: the memo
/// arena is sharded behind `RwLock`s and the counters are atomic, so a
/// [`mube_opt::BatchEvaluator`] pool or a [`mube_opt::Portfolio`]'s member
/// threads can evaluate concurrently against *one* objective and share each
/// other's memoized `Match(S)` work.
///
/// # Cached-entry validity across feedback edits
///
/// Arena entries are constraint-independent by construction, in two layers:
///
/// * **Membership.** Before any arena traffic, [`MubeObjective::evaluate`]
///   checks the *current* required sources against the subset and
///   short-circuits to infeasible on a miss — the condition under which
///   `Match(S)` would refuse to run at all.
/// * **Spanning.** `Match(S)` additionally demands that the produced schema
///   *span* every constrained source (Algorithm 1, line 24) — a property of
///   the clustering result, not of the subset. Entries therefore memoize
///   the spans-deferred outcome ([`match_sources_deferring_spans`]) plus
///   the set of sources the schema covers, and every read re-applies the
///   `C ⊆ spanned` check against the current constraints.
///
/// Together these make a `FeasibilityOnly` spec edit (required source
/// added *or* dropped, new budget `m`) invalidate nothing while staying
/// bit-identical to a cold evaluation under the edited spec.
pub struct MubeObjective {
    snapshot: Arc<UniverseSnapshot>,
    bindings: Vec<(f64, QefBinding)>,
    constraints: Constraints,
    match_config: MatchConfig,
    max_sources: usize,
    pinned: Vec<usize>,
    /// Sorted indices of the explicitly constrained sources `C` — the set
    /// the mediated schema must span. A subset of [`Self::pinned`] (which
    /// also folds in GA-constraint sources).
    span_pins: Vec<u32>,
    /// Whether any binding is [`QefBinding::Matching`] — decides whether a
    /// cached entry's match part participates in combination at all.
    has_matching: bool,
    arena: ArenaRef,
    caching: AtomicBool,
    /// Armed cancellation: the token plus the epoch captured when it was
    /// armed. [`SubsetProblem::cancelled`] reports whether the token fired
    /// since; `None` (or a token that never fires) leaves every evaluation
    /// and every solver trajectory bit-identical to an unarmed run.
    cancel: Option<(CancelToken, u64)>,
    /// The delta class the arena computed when it was pointed at this
    /// objective's spec (`None` for one-shot solves on a fresh arena).
    spec_delta: Option<SpecDelta>,
    /// Entries the arena invalidated when preparing for this spec.
    invalidated: u64,
    match_calls: AtomicU64,
    cache_hits: AtomicU64,
    reused: AtomicU64,
    recombined: AtomicU64,
    evictions: AtomicU64,
    match_stats: Mutex<MatchStats>,
}

impl MubeObjective {
    pub(crate) fn new(
        snapshot: Arc<UniverseSnapshot>,
        bindings: Vec<(f64, QefBinding)>,
        constraints: Constraints,
        match_config: MatchConfig,
        max_sources: usize,
        arena: ArenaRef,
    ) -> Self {
        let mut pinned: Vec<usize> = constraints
            .required_sources()
            .into_iter()
            .map(SourceId::index)
            .collect();
        pinned.sort_unstable();
        // Already sorted: `Constraints::sources` is an ordered set.
        let span_pins: Vec<u32> = constraints.sources().iter().map(|s| s.0).collect();
        let has_matching = bindings
            .iter()
            .any(|(_, b)| matches!(b, QefBinding::Matching));
        let spec_delta = arena.last_delta();
        let invalidated = arena.last_invalidated();
        Self {
            snapshot,
            bindings,
            constraints,
            match_config,
            max_sources,
            pinned,
            span_pins,
            has_matching,
            arena,
            caching: AtomicBool::new(true),
            cancel: None,
            spec_delta,
            invalidated,
            match_calls: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            reused: AtomicU64::new(0),
            recombined: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            match_stats: Mutex::new(MatchStats::default()),
        }
    }

    /// Enables or disables evaluation memoization. On by default; the
    /// `ablation_cache` experiment turns it off to measure how much work
    /// the memo arena saves the revisit-heavy tabu search. Disabling drops
    /// every entry in the backing arena.
    pub fn set_cache_enabled(&self, enabled: bool) {
        self.caching.store(enabled, Ordering::Relaxed);
        if !enabled {
            self.arena.clear();
        }
    }

    /// Bounds the memo arena to roughly `capacity` entries across all
    /// shards (minimum one entry per shard). A shard that exceeds its slice
    /// of the budget is cleared wholesale and the dropped entries are added
    /// to [`MubeObjective::evictions`].
    pub fn set_cache_capacity(&self, capacity: usize) {
        self.arena.set_capacity(capacity);
    }

    /// Runs `Match(S)` for a set of source ids (uncached; used by the
    /// engine to reconstruct the winning schema).
    pub fn match_schema(&self, ids: &[SourceId]) -> Option<MatchOutcome> {
        match_sources(
            self.snapshot.universe(),
            ids,
            &self.constraints,
            &self.match_config,
            self.snapshot.similarity(),
        )
    }

    /// Arms cooperative cancellation: captures the token's current epoch so
    /// only a [`CancelToken::cancel`] issued *after* arming fires for this
    /// objective. Armed once by the engine before the solve starts.
    pub(crate) fn arm_cancel(&mut self, token: &CancelToken) {
        let epoch = token.epoch();
        self.cancel = Some((token.clone(), epoch));
    }

    /// Number of `Match(S)` invocations so far (cache misses).
    pub fn match_calls(&self) -> u64 {
        self.match_calls.load(Ordering::Relaxed)
    }

    /// Number of memoized evaluations served whole from the arena.
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits.load(Ordering::Relaxed)
    }

    /// Evaluations served by entries that survived from an *earlier*
    /// iteration of a session (component reuse across user feedback).
    pub fn reused(&self) -> u64 {
        self.reused.load(Ordering::Relaxed)
    }

    /// The subset of [`MubeObjective::reused`] that was recombined under
    /// weights different from the ones the entry was computed with — the
    /// weights-only fast path.
    pub fn recombined(&self) -> u64 {
        self.recombined.load(Ordering::Relaxed)
    }

    /// Arena entries invalidated by the spec edit that led to this solve.
    pub fn invalidated(&self) -> u64 {
        self.invalidated
    }

    /// How the spec that built this objective differs from the previous
    /// spec evaluated on the same arena (`None` on a fresh arena).
    pub fn spec_delta(&self) -> Option<SpecDelta> {
        self.spec_delta
    }

    /// Number of memoized entries dropped by capacity eviction.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Aggregated `Match(S)` work counters over every (uncached) objective
    /// evaluation so far.
    pub fn match_stats(&self) -> MatchStats {
        *unpoison(self.match_stats.lock())
    }

    /// Evaluates every component QEF for a selection, returning
    /// `(name, weight, value)` triples — used to report per-QEF values on
    /// the final solution.
    pub fn component_values(&self, ids: &[SourceId]) -> Vec<(String, f64, f64)> {
        let selection =
            SourceSelection::from_ids(self.snapshot.universe().len(), ids.iter().copied());
        self.bindings
            .iter()
            .map(|(w, binding)| match binding {
                QefBinding::Matching => {
                    let quality = self.match_schema(ids).map_or(0.0, |o| o.quality);
                    ("matching".to_owned(), *w, quality)
                }
                QefBinding::Registered(idx) => {
                    let qef = self.snapshot.qef(*idx);
                    (
                        qef.name().to_owned(),
                        *w,
                        qef.evaluate(&selection, self.snapshot.context()),
                    )
                }
                QefBinding::Characteristic(qef) => (
                    qef.name().to_owned(),
                    *w,
                    qef.evaluate(&selection, self.snapshot.context()),
                ),
            })
            .collect()
    }

    /// Whether every currently required source is in the subset. When this
    /// fails with a matching QEF bound, `Match(S)` would return the null
    /// schema — so the evaluation can short-circuit to infeasible without
    /// running (or caching) anything.
    fn pins_satisfied(&self, subset: &Subset) -> bool {
        self.pinned.iter().all(|&i| subset.contains(i))
    }

    /// Whether a schema spanning exactly the sources in `spanned` (sorted
    /// indices) satisfies the *current* source constraints — the read-time
    /// half of `Match(S)`'s line-24 validity check.
    fn spans_satisfied(&self, spanned: &[u32]) -> bool {
        self.span_pins
            .iter()
            .all(|p| spanned.binary_search(p).is_ok())
    }

    /// [`Self::match_schema`] with the spans-validity check deferred — the
    /// memoizing paths use this so the cached outcome stays valid across
    /// `FeasibilityOnly` constraint edits, re-applying
    /// [`Self::spans_satisfied`] at read time.
    fn match_schema_deferred(&self, ids: &[SourceId]) -> Option<MatchOutcome> {
        match_sources_deferring_spans(
            self.snapshot.universe(),
            ids,
            &self.constraints,
            &self.match_config,
            self.snapshot.similarity(),
        )
    }

    /// Combines a cached component vector (plus the matching quality, if a
    /// matching QEF is bound) under the current weights.
    ///
    /// Iterates the bindings in the same order as [`Self::compute_eval`]
    /// and accumulates `q += w * value` identically, so a recombined value
    /// is bit-for-bit the value a cold computation would produce.
    fn combine(&self, match_quality: f64, components: &[f64]) -> f64 {
        let mut q = 0.0;
        for (i, (w, binding)) in self.bindings.iter().enumerate() {
            let value = match binding {
                QefBinding::Matching => match_quality,
                _ => components.get(i).copied().unwrap_or(0.0),
            };
            q += w * value;
        }
        q
    }

    /// Full evaluation: computes every component in binding order, returning
    /// the combined `Q(S)` plus the memoizable component vector.
    ///
    /// The scalar accumulation is the reference order that [`Self::combine`]
    /// replicates. The matching step runs spans-deferred: a schema that
    /// fails to span a constrained source makes the *evaluation* infeasible
    /// (`-∞`, exactly as the checked `Match(S)` would), but the outcome —
    /// schema key, quality, spanned set — and the remaining components are
    /// still computed and cached, because none of them depend on which
    /// sources are constrained. Only a subset missing a required source
    /// outright aborts with no reusable components.
    fn compute_eval(&self, subset: &Subset) -> (f64, ComponentEval) {
        let ids: Vec<SourceId> = subset.iter().map(|i| SourceId(i as u32)).collect();
        // Subset and SourceSelection share the packed-word layout over the
        // same universe: convert by word copy, not by re-inserting members.
        let selection = SourceSelection::from_words(self.snapshot.universe().len(), subset.words());
        let mut components = vec![0.0f64; self.bindings.len()];
        let mut match_part = None;
        let mut spans_ok = true;
        let mut q = 0.0;
        for (i, (w, binding)) in self.bindings.iter().enumerate() {
            let value = match binding {
                QefBinding::Matching => {
                    self.match_calls.fetch_add(1, Ordering::Relaxed);
                    match self.match_schema_deferred(&ids) {
                        Some(outcome) => {
                            unpoison(self.match_stats.lock()).absorb(&outcome.stats);
                            let spanned = spanned_of(&outcome.schema);
                            spans_ok = self.spans_satisfied(&spanned);
                            match_part = Some(MatchPart::Feasible {
                                quality: outcome.quality,
                                schema_key: schema_key(&outcome.schema),
                                spanned,
                            });
                            outcome.quality
                        }
                        // A required source is missing from S itself — no
                        // schema to cluster, no reusable components.
                        None => return (f64::NEG_INFINITY, ComponentEval::infeasible()),
                    }
                }
                QefBinding::Registered(idx) => self
                    .snapshot
                    .qef(*idx)
                    .evaluate(&selection, self.snapshot.context()),
                QefBinding::Characteristic(qef) => {
                    qef.evaluate(&selection, self.snapshot.context())
                }
            };
            debug_assert!(
                (0.0..=1.0 + 1e-9).contains(&value),
                "QEF out of range: {value}"
            );
            if !matches!(binding, QefBinding::Matching) {
                components[i] = value;
            }
            q += w * value;
        }
        let v = if spans_ok { q } else { f64::NEG_INFINITY };
        (
            v,
            ComponentEval {
                match_part,
                components,
            },
        )
    }

    /// Computes admissible per-binding caps for the completions of a
    /// partial assignment, or `None` when no feasible completion exists
    /// (a required source is decided out under a matching binding, or the
    /// decided-in set already exceeds the cardinality budget).
    ///
    /// Sources of tightness, per binding:
    ///
    /// * **Matching** — capped at the trivial `1.0`: `Match(S)` quality is
    ///   not monotone in `S`, so no relaxation applies.
    /// * **Registered QEFs** — a [`Qef::monotone`] function evaluated on
    ///   the *possible* set (decided-in plus free) dominates every
    ///   completion; a [`Qef::modular`] decomposition additionally packs
    ///   the top-`budget` positive free gains on top of the decided-in
    ///   gains, which respects `|S| ≤ m` where the monotone cap cannot.
    ///   The cap is the min of whichever apply (trivial `1.0` otherwise).
    /// * **Characteristics** — [`CharacteristicQef::upper_bound`], the max
    ///   normalized value over the possible set, dominates all four
    ///   aggregations.
    ///
    /// The monotone evaluations run against the [`EvalArena`]: if the
    /// possible set already has a memoized component vector (common near
    /// the root, where the possible set is the full universe — an early
    /// full-universe evaluation seeds it), its components are reused and
    /// the bound costs no QEF work. Bound probes never *insert* into the
    /// arena: entries must be complete, bit-identical full evaluations,
    /// and a bound path computes neither `Match(S)` nor non-monotone
    /// components.
    fn binding_caps(&self, decided_in: &Subset, decided_out: &Subset) -> Option<BindingCaps> {
        if self.has_matching && self.pinned.iter().any(|&i| decided_out.contains(i)) {
            return None;
        }
        if decided_in.len() > self.max_sources {
            return None;
        }
        let budget = self.max_sources - decided_in.len();
        let possible = decided_out.complement();
        let possible_sel =
            SourceSelection::from_words(self.snapshot.universe().len(), possible.words());
        let cached: Option<Vec<f64>> = self
            .arena
            .probe(possible.fingerprint(), &possible, |entry| {
                (entry.eval.components.len() == self.bindings.len())
                    .then(|| entry.eval.components.clone())
            })
            .flatten();
        let mut caps = vec![0.0; self.bindings.len()];
        let mut modular: Vec<(usize, Vec<f64>)> = Vec::new();
        for (k, (_, binding)) in self.bindings.iter().enumerate() {
            caps[k] = match binding {
                QefBinding::Matching => 1.0,
                QefBinding::Registered(idx) => {
                    let qef = self.snapshot.qef(*idx);
                    let mut cap = if qef.monotone() {
                        match &cached {
                            Some(components) => components[k],
                            None => qef.evaluate(&possible_sel, self.snapshot.context()),
                        }
                    } else {
                        1.0
                    };
                    if let Some(gains) = qef.modular(self.snapshot.context()) {
                        let in_sum: f64 = decided_in.iter().map(|i| gains[i]).sum();
                        let mut free_gains: Vec<f64> = possible
                            .iter()
                            .filter(|&i| !decided_in.contains(i))
                            .map(|i| gains[i])
                            .filter(|g| *g > 0.0)
                            .collect();
                        free_gains.sort_unstable_by(|a, b| b.total_cmp(a));
                        let top: f64 = free_gains.iter().take(budget).sum();
                        cap = cap.min(in_sum + top);
                        modular.push((k, gains));
                    }
                    cap
                }
                QefBinding::Characteristic(qef) => {
                    qef.upper_bound(&possible_sel, self.snapshot.context())
                }
            };
        }
        Some(BindingCaps { caps, modular })
    }

    /// Records a cross-iteration reuse (recombined when the entry predates
    /// the current weights).
    fn count_survivor(&self, reweighted: bool) {
        self.reused.fetch_add(1, Ordering::Relaxed);
        if reweighted {
            self.recombined.fetch_add(1, Ordering::Relaxed);
        }
    }
}

impl SubsetProblem for MubeObjective {
    fn universe_size(&self) -> usize {
        self.snapshot.universe().len()
    }

    fn cancelled(&self) -> bool {
        self.cancel
            .as_ref()
            .is_some_and(|(token, epoch)| token.fired_since(*epoch))
    }

    fn max_selected(&self) -> usize {
        self.max_sources
    }

    fn pinned(&self) -> &[usize] {
        &self.pinned
    }

    /// Admissible upper bound on `Q(T)` over every feasible completion
    /// `T ⊇ decided_in` disjoint from `decided_out` with `|T| ≤ m`: the
    /// weight-combined per-binding caps of [`Self::binding_caps`], plus
    /// [`BOUND_SLACK`] so float summation order can never let the bound
    /// dip below the true completion optimum.
    fn component_bound(&self, decided_in: &Subset, decided_out: &Subset) -> Option<f64> {
        let Some(BindingCaps { caps, .. }) = self.binding_caps(decided_in, decided_out) else {
            // No feasible completion: a required source is decided out, or
            // the decided-in set already violates the cardinality budget.
            return Some(f64::NEG_INFINITY);
        };
        let mut q = 0.0;
        for ((w, _), cap) in self.bindings.iter().zip(&caps) {
            q += w * cap;
        }
        Some(q + BOUND_SLACK)
    }

    /// Fractional tightening over the modular bindings. Variables are
    /// `[y_1..y_J, x_1..x_F]`: one `y_j ∈ [0, 1]` per modular QEF (its
    /// achieved value) and one `x_i ∈ [0, 1]` per free source, with
    /// `y_j ≤ Σ_{i∈decided_in} g_ji + Σ_free g_ji·x_i` and
    /// `Σ x_i ≤ m − |decided_in|`. Every integral completion is a feasible
    /// point, so `constant + optimum` is admissible; the constant carries
    /// the non-modular bindings' component caps (and the slack). Returns
    /// `None` when no binding is modular or no free choice remains — the
    /// component bound is already as tight as this LP would be.
    fn lp_relaxation(&self, decided_in: &Subset, decided_out: &Subset) -> Option<(LpProblem, f64)> {
        let BindingCaps { caps, modular } = self.binding_caps(decided_in, decided_out)?;
        if modular.is_empty() {
            return None;
        }
        let budget = self.max_sources.saturating_sub(decided_in.len());
        let free: Vec<usize> = (0..self.snapshot.universe().len())
            .filter(|&i| !decided_in.contains(i) && !decided_out.contains(i))
            .collect();
        if free.is_empty() || budget == 0 {
            return None;
        }
        let nm = modular.len();
        let nvars = nm + free.len();
        let mut objective = vec![0.0; nvars];
        let mut is_modular = vec![false; self.bindings.len()];
        for (j, (k, _)) in modular.iter().enumerate() {
            is_modular[*k] = true;
            objective[j] = self.bindings[*k].0;
        }
        let mut constant = BOUND_SLACK;
        for (k, (w, _)) in self.bindings.iter().enumerate() {
            if !is_modular[k] {
                constant += w * caps[k];
            }
        }
        let mut constraints = Vec::with_capacity(2 * nm + free.len() + 1);
        for (j, (_, gains)) in modular.iter().enumerate() {
            let mut coeffs = vec![0.0; nvars];
            coeffs[j] = 1.0;
            for (fi, &i) in free.iter().enumerate() {
                coeffs[nm + fi] = -gains[i];
            }
            let in_sum: f64 = decided_in.iter().map(|i| gains[i]).sum();
            constraints.push(LpConstraint {
                coeffs,
                rel: Relation::Le,
                rhs: in_sum,
            });
            let mut unit = vec![0.0; nvars];
            unit[j] = 1.0;
            constraints.push(LpConstraint {
                coeffs: unit,
                rel: Relation::Le,
                rhs: 1.0,
            });
        }
        for fi in 0..free.len() {
            let mut unit = vec![0.0; nvars];
            unit[nm + fi] = 1.0;
            constraints.push(LpConstraint {
                coeffs: unit,
                rel: Relation::Le,
                rhs: 1.0,
            });
        }
        let mut all = vec![0.0; nvars];
        for slot in all.iter_mut().take(nvars).skip(nm) {
            *slot = 1.0;
        }
        constraints.push(LpConstraint {
            coeffs: all,
            rel: Relation::Le,
            rhs: budget as f64,
        });
        Some((
            LpProblem {
                objective,
                constraints,
            },
            constant,
        ))
    }

    fn evaluate(&self, subset: &Subset) -> f64 {
        if !self.caching.load(Ordering::Relaxed) {
            return self.compute_eval(subset).0;
        }
        // Required-source pre-check *before* any arena traffic: a subset
        // missing a currently pinned source is infeasible under the current
        // spec, but that is a property of the spec, not of the subset — it
        // must neither consult nor pollute the (constraint-independent)
        // arena. This is what keeps cached entries valid across
        // `FeasibilityOnly` edits. The solvers structurally pin required
        // sources, so this path fires only on warm-start repairs and
        // hand-fed subsets.
        if self.has_matching && !self.pins_satisfied(subset) {
            return f64::NEG_INFINITY;
        }
        // One hash of the subset per evaluation; both probes reuse the
        // already-computed u64 key, and the subset is cloned only when
        // actually inserted.
        let key = subset.fingerprint();
        let epoch = self.arena.epoch();
        let weights_version = self.arena.weights_version();
        let probed = self.arena.probe(key, subset, |entry| {
            let survivor = entry.epoch < epoch;
            let reweighted = entry.weights_version < weights_version;
            let probe = if !self.has_matching {
                Probe::Full(self.combine(0.0, &entry.eval.components))
            } else {
                match &entry.eval.match_part {
                    Some(MatchPart::Feasible {
                        quality, spanned, ..
                    }) => {
                        if self.spans_satisfied(spanned) {
                            Probe::Full(self.combine(*quality, &entry.eval.components))
                        } else {
                            // The memoized schema does not span a currently
                            // constrained source — the verdict a cold
                            // `Match(S)` would reach under this spec.
                            Probe::Full(f64::NEG_INFINITY)
                        }
                    }
                    Some(MatchPart::Infeasible) => Probe::Full(f64::NEG_INFINITY),
                    // Stripped by a MatchInvalidating edit: clone the
                    // components out so Match(S) can rerun lock-free.
                    None => Probe::Stale(entry.eval.components.clone()),
                }
            };
            (probe, survivor, reweighted)
        });
        match probed {
            Some((Probe::Full(v), survivor, reweighted)) => {
                self.cache_hits.fetch_add(1, Ordering::Relaxed);
                if survivor {
                    self.count_survivor(reweighted);
                }
                return v;
            }
            Some((Probe::Stale(components), survivor, reweighted)) => {
                // Partial reuse: every non-matching component survives the
                // match-invalidating edit; only Match(S) reruns.
                let ids: Vec<SourceId> = subset.iter().map(|i| SourceId(i as u32)).collect();
                self.match_calls.fetch_add(1, Ordering::Relaxed);
                let v = match self.match_schema_deferred(&ids) {
                    Some(outcome) => {
                        unpoison(self.match_stats.lock()).absorb(&outcome.stats);
                        let spanned = spanned_of(&outcome.schema);
                        let quality = outcome.quality;
                        let feasible = self.spans_satisfied(&spanned);
                        self.arena.restore_match_part(
                            key,
                            subset,
                            MatchPart::Feasible {
                                quality,
                                schema_key: schema_key(&outcome.schema),
                                spanned,
                            },
                        );
                        if feasible {
                            self.combine(quality, &components)
                        } else {
                            f64::NEG_INFINITY
                        }
                    }
                    None => {
                        // Unreachable while memoizing (the pins pre-check
                        // guarantees membership), but kept total: record
                        // the null schema rather than panic.
                        self.arena
                            .restore_match_part(key, subset, MatchPart::Infeasible);
                        f64::NEG_INFINITY
                    }
                };
                if survivor {
                    self.count_survivor(reweighted);
                }
                return v;
            }
            None => {}
        }
        // Compute outside any lock: `Match(S)` is the expensive part and
        // other threads must keep hitting the shard meanwhile. Concurrent
        // first evaluations of the *same* subset may each compute it (both
        // get the same vector — evaluation is pure); the arena's insert
        // re-probes so the bucket still stores it once.
        let (v, eval) = self.compute_eval(subset);
        let dropped = self.arena.insert(key, subset, eval);
        if dropped > 0 {
            self.evictions.fetch_add(dropped, Ordering::Relaxed);
        }
        v
    }
}
