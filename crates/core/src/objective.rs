//! The composite objective `Q(S)` as a subset-selection problem.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

use mube_cluster::{match_sources, MatchConfig, MatchOutcome, MatchStats};
use mube_opt::{Subset, SubsetProblem};
use mube_qef::{CharacteristicQef, Qef, QefContext};
use mube_schema::{Constraints, SourceId, SourceSelection, Universe};

use crate::matrix_sim::MatrixSimilarity;

/// A weight bound to the function it scales.
pub(crate) enum QefBinding<'a> {
    /// The `F1` matching-quality QEF (computed via `Match(S)`).
    Matching,
    /// A QEF registered on the engine.
    Registered(&'a dyn Qef),
    /// An automatically derived source-characteristic QEF.
    Characteristic(CharacteristicQef),
}

/// `Q(S)` exposed through [`SubsetProblem`] so any `mube-opt` solver can
/// drive it. Evaluations are memoized by selection fingerprint — tabu search
/// revisits neighbourhoods constantly, and `Match(S)` dominates the cost of
/// an evaluation.
pub struct MubeObjective<'a> {
    universe: &'a Universe,
    ctx: &'a QefContext<'a>,
    sim: &'a MatrixSimilarity,
    bindings: Vec<(f64, QefBinding<'a>)>,
    constraints: &'a Constraints,
    match_config: &'a MatchConfig,
    max_sources: usize,
    pinned: Vec<usize>,
    /// Memo cache, keyed by a precomputed 64-bit fingerprint of the subset
    /// so each lookup hashes the selection words exactly once. The bucket
    /// stores the subsets themselves and compares them exactly — a
    /// fingerprint collision lands in the same bucket but can never alias
    /// (aliasing would silently poison the search).
    cache: RefCell<HashMap<u64, Vec<(Subset, f64)>>>,
    caching: Cell<bool>,
    match_calls: Cell<u64>,
    cache_hits: Cell<u64>,
    match_stats: Cell<MatchStats>,
}

/// The subset's hash, computed once per [`MubeObjective::evaluate`] call.
fn fingerprint(subset: &Subset) -> u64 {
    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    subset.hash(&mut hasher);
    hasher.finish()
}

impl<'a> MubeObjective<'a> {
    pub(crate) fn new(
        universe: &'a Universe,
        ctx: &'a QefContext<'a>,
        sim: &'a MatrixSimilarity,
        bindings: Vec<(f64, QefBinding<'a>)>,
        constraints: &'a Constraints,
        match_config: &'a MatchConfig,
        max_sources: usize,
    ) -> Self {
        let mut pinned: Vec<usize> = constraints
            .required_sources()
            .into_iter()
            .map(SourceId::index)
            .collect();
        pinned.sort_unstable();
        Self {
            universe,
            ctx,
            sim,
            bindings,
            constraints,
            match_config,
            max_sources,
            pinned,
            cache: RefCell::new(HashMap::new()),
            caching: Cell::new(true),
            match_calls: Cell::new(0),
            cache_hits: Cell::new(0),
            match_stats: Cell::new(MatchStats::default()),
        }
    }

    /// Enables or disables evaluation memoization. On by default; the
    /// `ablation_cache` experiment turns it off to measure how much work
    /// the cache saves the revisit-heavy tabu search.
    pub fn set_cache_enabled(&self, enabled: bool) {
        self.caching.set(enabled);
        if !enabled {
            self.cache.borrow_mut().clear();
        }
    }

    /// Runs `Match(S)` for a set of source ids (uncached; used by the
    /// engine to reconstruct the winning schema).
    pub fn match_schema(&self, ids: &[SourceId]) -> Option<MatchOutcome> {
        match_sources(
            self.universe,
            ids,
            self.constraints,
            self.match_config,
            self.sim,
        )
    }

    /// Number of `Match(S)` invocations so far (cache misses).
    pub fn match_calls(&self) -> u64 {
        self.match_calls.get()
    }

    /// Number of memoized evaluations served.
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits.get()
    }

    /// Aggregated `Match(S)` work counters over every (uncached) objective
    /// evaluation so far.
    pub fn match_stats(&self) -> MatchStats {
        self.match_stats.get()
    }

    /// Evaluates every component QEF for a selection, returning
    /// `(name, weight, value)` triples — used to report per-QEF values on
    /// the final solution.
    pub fn component_values(&self, ids: &[SourceId]) -> Vec<(String, f64, f64)> {
        let selection = SourceSelection::from_ids(self.universe.len(), ids.iter().copied());
        self.bindings
            .iter()
            .map(|(w, binding)| match binding {
                QefBinding::Matching => {
                    let quality = self.match_schema(ids).map_or(0.0, |o| o.quality);
                    ("matching".to_owned(), *w, quality)
                }
                QefBinding::Registered(qef) => (
                    qef.name().to_owned(),
                    *w,
                    qef.evaluate(&selection, self.ctx),
                ),
                QefBinding::Characteristic(qef) => (
                    qef.name().to_owned(),
                    *w,
                    qef.evaluate(&selection, self.ctx),
                ),
            })
            .collect()
    }

    fn compute(&self, subset: &Subset) -> f64 {
        let ids: Vec<SourceId> = subset.iter().map(|i| SourceId(i as u32)).collect();
        let selection = SourceSelection::from_ids(self.universe.len(), ids.iter().copied());
        let mut q = 0.0;
        for (w, binding) in &self.bindings {
            let value = match binding {
                QefBinding::Matching => {
                    self.match_calls.set(self.match_calls.get() + 1);
                    match self.match_schema(&ids) {
                        Some(outcome) => {
                            let mut agg = self.match_stats.get();
                            agg.absorb(&outcome.stats);
                            self.match_stats.set(agg);
                            outcome.quality
                        }
                        // Null schema: the source/GA constraints cannot be
                        // satisfied on this S — infeasible candidate.
                        None => return f64::NEG_INFINITY,
                    }
                }
                QefBinding::Registered(qef) => qef.evaluate(&selection, self.ctx),
                QefBinding::Characteristic(qef) => qef.evaluate(&selection, self.ctx),
            };
            debug_assert!(
                (0.0..=1.0 + 1e-9).contains(&value),
                "QEF out of range: {value}"
            );
            q += w * value;
        }
        q
    }
}

impl SubsetProblem for MubeObjective<'_> {
    fn universe_size(&self) -> usize {
        self.universe.len()
    }

    fn max_selected(&self) -> usize {
        self.max_sources
    }

    fn pinned(&self) -> &[usize] {
        &self.pinned
    }

    fn evaluate(&self, subset: &Subset) -> f64 {
        if !self.caching.get() {
            return self.compute(subset);
        }
        // One hash of the subset per evaluation; the miss path re-probes
        // with the already-computed u64 key (trivially cheap) and clones
        // the subset only when actually inserting it.
        let key = fingerprint(subset);
        let hit = self
            .cache
            .borrow()
            .get(&key)
            .and_then(|bucket| bucket.iter().find(|(s, _)| s == subset).map(|(_, v)| *v));
        if let Some(v) = hit {
            self.cache_hits.set(self.cache_hits.get() + 1);
            return v;
        }
        let v = self.compute(subset);
        self.cache
            .borrow_mut()
            .entry(key)
            .or_default()
            .push((subset.clone(), v));
        v
    }
}
