//! Exact branch-and-bound against the full µBE objective: the QEF bounds
//! (`component_bound` / `lp_relaxation`) must be admissible on generated
//! universes, and `Mube::solve_exact` must certify the same optimum the
//! exhaustive enumerator finds — bit-identically.

use proptest::prelude::*;

use mube_core::{MubeBuilder, ProblemSpec};
use mube_opt::{BranchAndBound, Exhaustive, Solver, Subset, SubsetProblem};
use mube_qef::Weights;
use mube_schema::SourceId;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The component bound dominates every feasible completion of a random
    /// partial assignment: enumerate all subsets of the universe, keep
    /// those compatible with (decided-in, decided-out) and the budget, and
    /// check none beats the reported bound.
    #[test]
    fn component_bound_dominates_all_completions(
        size in 5usize..9,
        universe_seed in 0u64..500,
        m in 2usize..6,
        in_mask in 0u32..8,
        out_mask in 8u32..64,
    ) {
        let generated = mube_datagen::UniverseConfig::small_test(size, universe_seed).generate();
        let mube = MubeBuilder::new(&generated.universe)
            .sketches(generated.sketches.clone())
            .build();
        let spec = ProblemSpec::new(m).with_weights(Weights::paper_defaults());
        let objective = mube.objective(&spec).unwrap();
        let n = generated.universe.len();
        let decided_in = Subset::from_indices(n, (0..n).filter(|i| in_mask & (1 << i) != 0));
        let decided_out = Subset::from_indices(
            n,
            (0..n).filter(|i| out_mask & (1 << i) != 0 && !decided_in.contains(*i)),
        );
        let bound = objective
            .component_bound(&decided_in, &decided_out)
            .expect("µBE objective always reports a component bound");
        for mask in 0u64..(1 << n) {
            let t = Subset::from_indices(n, (0..n).filter(|i| mask & (1 << i) != 0));
            let compatible = decided_in.iter().all(|i| t.contains(i))
                && decided_out.iter().all(|i| !t.contains(i))
                && t.len() <= m;
            if !compatible {
                continue;
            }
            let v = objective.evaluate(&t);
            prop_assert!(
                v <= bound,
                "completion {t:?} scores {v} above bound {bound}"
            );
        }
    }

    /// `solve_exact` certifies the optimum the exhaustive enumerator finds,
    /// bit-for-bit, with a zero gap — on universes small enough to sweep.
    #[test]
    fn solve_exact_certifies_the_exhaustive_optimum(
        size in 4usize..9,
        universe_seed in 0u64..500,
        m in 2usize..5,
    ) {
        let generated = mube_datagen::UniverseConfig::small_test(size, universe_seed).generate();
        let mube = MubeBuilder::new(&generated.universe)
            .sketches(generated.sketches.clone())
            .build();
        let spec = ProblemSpec::new(m).with_weights(Weights::paper_defaults());
        let exact = mube.solve_exact(&spec, 7).unwrap();
        let sweep = mube.solve(&spec, &Exhaustive::default(), 7).unwrap();
        prop_assert_eq!(
            exact.overall_quality.to_bits(),
            sweep.overall_quality.to_bits(),
            "bnb {} vs exhaustive {}",
            exact.overall_quality,
            sweep.overall_quality
        );
        prop_assert_eq!(exact.stats.gap, Some(0.0));
        prop_assert!(exact.stats.nodes_expanded > 0);
        // The bounds must actually prune on these universes — otherwise
        // branch-and-bound is a slow exhaustive sweep.
        prop_assert!(exact.stats.nodes_pruned > 0);
    }
}

/// Pins (required sources) survive the exact solve, and the LP-tightened
/// root bound still admits the optimum.
#[test]
fn solve_exact_respects_source_constraints() {
    let generated = mube_datagen::UniverseConfig::small_test(8, 42).generate();
    let mube = MubeBuilder::new(&generated.universe)
        .sketches(generated.sketches.clone())
        .build();
    let spec = ProblemSpec::new(4)
        .with_weights(Weights::paper_defaults())
        .with_source_constraint(SourceId(3));
    let exact = mube.solve_exact(&spec, 1).unwrap();
    assert!(exact.selected.contains(&SourceId(3)));
    assert_eq!(exact.stats.gap, Some(0.0));
    let sweep = mube.solve(&spec, &Exhaustive::default(), 1).unwrap();
    assert_eq!(
        exact.overall_quality.to_bits(),
        sweep.overall_quality.to_bits()
    );
}

/// Anytime behaviour on the full objective: growing node budgets yield
/// monotonically non-increasing certified gaps, every incumbent-plus-gap
/// interval contains the true optimum, and the unlimited run closes it.
#[test]
fn node_budgets_shrink_the_certified_gap() {
    let generated = mube_datagen::UniverseConfig::small_test(10, 9).generate();
    let mube = MubeBuilder::new(&generated.universe)
        .sketches(generated.sketches.clone())
        .build();
    let spec = ProblemSpec::new(5).with_weights(Weights::paper_defaults());
    let optimum = mube.solve_exact(&spec, 3).unwrap().overall_quality;
    let objective = mube.objective(&spec).unwrap();
    let mut previous = f64::INFINITY;
    for budget in [1u64, 4, 16, 64, 4096] {
        let bnb = BranchAndBound {
            node_budget: budget,
            ..BranchAndBound::default()
        };
        let result = bnb.solve(&objective, 3);
        let gap = result.gap.expect("bnb always certifies a gap");
        assert!(gap >= 0.0, "negative gap {gap} at budget {budget}");
        assert!(
            gap <= previous + 1e-12,
            "gap grew from {previous} to {gap} at budget {budget}"
        );
        assert!(
            result.objective + gap >= optimum - 1e-9,
            "interval [{}, {}] misses optimum {optimum} at budget {budget}",
            result.objective,
            result.objective + gap
        );
        previous = gap;
    }
}
