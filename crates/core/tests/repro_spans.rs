//! Review repro: FeasibilityOnly reuse vs the Match spans-check on C.

use mube_core::{EvalArena, MubeBuilder, ProblemSpec};
use mube_opt::{Subset, SubsetProblem};
use mube_schema::{SourceBuilder, SourceId, Universe};

fn universe() -> Universe {
    let mut u = Universe::new();
    // Two similar sources plus one totally dissimilar outlier (source 2):
    // its attributes never merge with anything, so the produced schema
    // does not span it.
    for (name, attrs) in [
        ("en1", vec!["first name", "city"]),
        ("en2", vec!["first names", "town"]),
        ("zz", vec!["qqqqqq", "wwwwww"]),
    ] {
        u.add_source(
            SourceBuilder::new(name)
                .attributes(attrs)
                .cardinality(100)
                .characteristic("mttf", 80.0),
        )
        .unwrap();
    }
    u
}

#[test]
fn feasibility_only_reuse_diverges_from_cold_on_spans() {
    let u = universe();
    let mube = MubeBuilder::new(&u).build();
    let n = u.len();
    // Subset containing all three sources, incl. the outlier.
    let s = Subset::from_indices(n, [0, 1, 2]);

    let spec_a = ProblemSpec::new(n).with_theta(0.5);
    let arena = std::sync::Arc::new(EvalArena::new());
    {
        let obj = mube.objective_in(&spec_a, &arena).unwrap();
        let v = obj.evaluate(&s);
        println!("spec A (no constraints): Q(S) = {v}");
        assert!(v.is_finite(), "precondition: S feasible under spec A");
    }

    // FeasibilityOnly edit: require the outlier source.
    let spec_b = spec_a.clone().with_source_constraint(SourceId(2));
    let warm = {
        let obj = mube.objective_in(&spec_b, &arena).unwrap();
        println!("delta = {:?}", obj.spec_delta());
        obj.evaluate(&s)
    };
    let cold = {
        let obj = mube.objective(&spec_b).unwrap();
        obj.evaluate(&s)
    };
    println!("warm (arena) = {warm}, cold = {cold}");
    assert_eq!(
        warm.to_bits(),
        cold.to_bits(),
        "arena reuse diverges from cold evaluation after require_source"
    );
}
