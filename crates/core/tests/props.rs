//! Property tests for the delta-aware session core: recombining cached
//! component vectors under new weights must be indistinguishable — to the
//! bit — from evaluating cold.

use proptest::prelude::*;

use mube_core::{EvalArena, MubeBuilder, ProblemSpec, SpecDelta};
use mube_datagen::UniverseConfig;
use mube_opt::{Subset, SubsetProblem};
use mube_qef::Weights;

/// Deterministic subsets from bitmasks (any size, including empty — the
/// objective must treat them identically whether cached or not).
fn subsets_from_masks(n: usize, masks: &[u32]) -> Vec<Subset> {
    masks
        .iter()
        .map(|mask| Subset::from_indices(n, (0..n).filter(|i| mask & (1 << (i % 32)) != 0)))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn weights_only_recombination_bit_equals_cold_eval(
        size in 8usize..20,
        universe_seed in 0u64..1_000,
        factors_a in prop::collection::vec(0.5f64..1.5, 5),
        factors_b in prop::collection::vec(0.5f64..1.5, 5),
        masks in prop::collection::vec(any::<u32>(), 1..10),
    ) {
        let generated = UniverseConfig::small_test(size, universe_seed).generate();
        let mube = MubeBuilder::new(&generated.universe)
            .sketches(generated.sketches.clone())
            .build();
        let n = generated.universe.len();
        let subsets = subsets_from_masks(n, &masks);

        let defaults = Weights::paper_defaults();
        let spec_a = ProblemSpec::new(n).with_weights(defaults.perturbed(&factors_a).unwrap());
        let spec_b = ProblemSpec::new(n).with_weights(defaults.perturbed(&factors_b).unwrap());

        // Warm the arena under weights A.
        let arena = EvalArena::new();
        {
            let obj_a = mube.objective_in(&spec_a, &arena).unwrap();
            for s in &subsets {
                obj_a.evaluate(s);
            }
        }

        // Re-point the arena at weights B: a weights-only delta (unless the
        // perturbations coincide). Every evaluation must recombine from
        // cache — zero Match(S) calls — and bit-equal a cold evaluation of
        // the same spec.
        let obj_b = mube.objective_in(&spec_b, &arena).unwrap();
        let delta = obj_b.spec_delta();
        prop_assert!(
            delta == Some(SpecDelta::WeightsOnly) || delta == Some(SpecDelta::Unchanged),
            "unexpected delta {delta:?}"
        );
        let cold = mube.objective(&spec_b).unwrap();
        for s in &subsets {
            let recombined = obj_b.evaluate(s);
            let reference = cold.evaluate(s);
            prop_assert_eq!(
                recombined.to_bits(),
                reference.to_bits(),
                "recombined {} != cold {} on {:?}",
                recombined,
                reference,
                s
            );
        }
        prop_assert_eq!(obj_b.match_calls(), 0);
    }
}
