//! Property tests for the delta-aware session core: recombining cached
//! component vectors under new weights must be indistinguishable — to the
//! bit — from evaluating cold.

use proptest::prelude::*;

use mube_core::{EvalArena, MubeBuilder, ProblemSpec, SimBackend, SimBackendKind, SpecDelta};
use mube_datagen::UniverseConfig;
use mube_opt::{Greedy, Subset, SubsetProblem};
use mube_qef::Weights;

/// Deterministic subsets from bitmasks (any size, including empty — the
/// objective must treat them identically whether cached or not).
fn subsets_from_masks(n: usize, masks: &[u32]) -> Vec<Subset> {
    masks
        .iter()
        .map(|mask| Subset::from_indices(n, (0..n).filter(|i| mask & (1 << (i % 32)) != 0)))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn weights_only_recombination_bit_equals_cold_eval(
        size in 8usize..20,
        universe_seed in 0u64..1_000,
        factors_a in prop::collection::vec(0.5f64..1.5, 5),
        factors_b in prop::collection::vec(0.5f64..1.5, 5),
        masks in prop::collection::vec(any::<u32>(), 1..10),
    ) {
        let generated = UniverseConfig::small_test(size, universe_seed).generate();
        let mube = MubeBuilder::new(&generated.universe)
            .sketches(generated.sketches.clone())
            .build();
        let n = generated.universe.len();
        let subsets = subsets_from_masks(n, &masks);

        let defaults = Weights::paper_defaults();
        let spec_a = ProblemSpec::new(n).with_weights(defaults.perturbed(&factors_a).unwrap());
        let spec_b = ProblemSpec::new(n).with_weights(defaults.perturbed(&factors_b).unwrap());

        // Warm the arena under weights A.
        let arena = std::sync::Arc::new(EvalArena::new());
        {
            let obj_a = mube.objective_in(&spec_a, &arena).unwrap();
            for s in &subsets {
                obj_a.evaluate(s);
            }
        }

        // Re-point the arena at weights B: a weights-only delta (unless the
        // perturbations coincide). Every evaluation must recombine from
        // cache — zero Match(S) calls — and bit-equal a cold evaluation of
        // the same spec.
        let obj_b = mube.objective_in(&spec_b, &arena).unwrap();
        let delta = obj_b.spec_delta();
        prop_assert!(
            delta == Some(SpecDelta::WeightsOnly) || delta == Some(SpecDelta::Unchanged),
            "unexpected delta {delta:?}"
        );
        let cold = mube.objective(&spec_b).unwrap();
        for s in &subsets {
            let recombined = obj_b.evaluate(s);
            let reference = cold.evaluate(s);
            prop_assert_eq!(
                recombined.to_bits(),
                reference.to_bits(),
                "recombined {} != cold {} on {:?}",
                recombined,
                reference,
                s
            );
        }
        prop_assert_eq!(obj_b.match_calls(), 0);
    }

    #[test]
    fn sparse_routed_solve_bit_equals_dense(
        size in 8usize..20,
        universe_seed in 0u64..1_000,
        theta in prop::sample::select(vec![0.4f64, 0.6, 0.75, 0.9]),
        m in 3usize..8,
    ) {
        // An Auto engine whose budget forces the sparse backend must solve
        // to the bit like the dense engine: same sources, same mediated
        // schema, identical Q(S). The sparse store is lossless (τ = None)
        // by construction on this route.
        let generated = UniverseConfig::small_test(size, universe_seed).generate();
        let dense = MubeBuilder::new(&generated.universe)
            .sketches(generated.sketches.clone())
            .sim_backend(SimBackend::Dense)
            .try_build()
            .unwrap();
        let routed = MubeBuilder::new(&generated.universe)
            .sketches(generated.sketches.clone())
            .sim_backend(SimBackend::Auto { budget_bytes: 0 })
            .try_build()
            .unwrap();
        prop_assert_eq!(dense.similarity().backend_kind(), SimBackendKind::Dense);
        prop_assert_eq!(routed.similarity().backend_kind(), SimBackendKind::Sparse);

        let spec = ProblemSpec::new(m).with_theta(theta);
        let solver = Greedy::default();
        let a = dense.solve(&spec, &solver, 0).unwrap();
        let b = routed.solve(&spec, &solver, 0).unwrap();
        prop_assert_eq!(a.selected, b.selected);
        prop_assert_eq!(a.schema, b.schema);
        prop_assert_eq!(
            a.overall_quality.to_bits(),
            b.overall_quality.to_bits(),
            "Q diverged: dense {} vs sparse-routed {}",
            a.overall_quality,
            b.overall_quality
        );
    }
}
