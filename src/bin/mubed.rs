//! `mubed` — the µBE session daemon.
//!
//! Hosts one universe snapshot and any number of concurrent user
//! sessions over it, driven by the newline-delimited JSON protocol of
//! `mube-serve` (one request object per line; responses echo the
//! request's `"id"`, so clients may pipeline — in particular `"cancel"`
//! while a `"solve"` is in flight).
//!
//! ```text
//! mubed --universe FILE            serve NDJSON on stdin/stdout
//! mubed --generate N [--seed S]    same, over a synthetic §7.1 universe
//! mubed ... --tcp ADDR             TCP listener instead of stdio
//! mubed --smoke                    self-contained concurrency demo:
//!                                  4 concurrent sessions + mid-solve
//!                                  cancels, then serial replays; exits
//!                                  non-zero unless every session's
//!                                  completed history is bit-identical
//!                                  to its single-threaded replay
//! ```
//!
//! The universe file format is the one `mube-cli generate` writes:
//! `name | cardinality | attr, attr, ... | key=value ...` per line.
//!
//! Example exchange:
//!
//! ```text
//! → {"id": 1, "cmd": "create-session", "max_sources": 3, "theta": 0.5}
//! ← {"id":1,"ok":true,"session":0}
//! → {"id": 2, "cmd": "solve", "session": 0}
//! ← {"id":2,"iteration":1,"ok":true,"solution":{...,"quality_bits":"..."}}
//! ```

use std::io::BufReader;
use std::process::ExitCode;
use std::sync::mpsc;
use std::sync::Arc;

use mube::datagen::UniverseConfig;
use mube::prelude::*;
use mube::serve::{serve_connection, Json, SessionHost, SessionSpec};
use mube_serve::proto::{Command, Edit, Request};

const USAGE: &str = "\
usage:
  mubed --universe FILE [--tcp ADDR]
  mubed --generate N [--seed S] [--tcp ADDR]
  mubed --smoke
protocol: one JSON request per line; see crates/serve/src/proto.rs";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    if args.iter().any(|a| a == "--smoke") {
        return smoke();
    }
    let universe = load_universe(args)?;
    eprintln!(
        "mubed: building snapshot over {} sources / {} attributes ...",
        universe.len(),
        universe.total_attrs()
    );
    let host = Arc::new(SessionHost::new(MubeBuilder::new(&universe).build()));
    eprintln!("mubed: snapshot ready");
    match flag_value(args, "--tcp") {
        Some(addr) => serve_tcp(&host, addr),
        None => {
            let stdin = std::io::stdin();
            let stdout = std::io::stdout();
            serve_connection(&host, stdin.lock(), stdout)
                .map_err(|e| format!("stdio transport failed: {e}"))?;
            Ok(ExitCode::SUCCESS)
        }
    }
}

fn load_universe(args: &[String]) -> Result<Universe, String> {
    if let Some(path) = flag_value(args, "--universe") {
        let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
        return parse_universe(&text);
    }
    if let Some(n) = flag_value(args, "--generate") {
        let sources: usize = n.parse().map_err(|e| format!("invalid --generate: {e}"))?;
        let seed: u64 = match flag_value(args, "--seed") {
            None => 42,
            Some(s) => s.parse().map_err(|e| format!("invalid --seed: {e}"))?,
        };
        return Ok(UniverseConfig::small_test(sources, seed)
            .generate()
            .universe);
    }
    Err("need --universe FILE, --generate N, or --smoke".to_owned())
}

/// Parses the `mube-cli` universe file format.
fn parse_universe(text: &str) -> Result<Universe, String> {
    let mut universe = Universe::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let parts: Vec<&str> = line.split('|').map(str::trim).collect();
        if parts.len() < 3 {
            return Err(format!(
                "line {}: expected 'name | cardinality | attrs [| characteristics]'",
                lineno + 1
            ));
        }
        let cardinality: u64 = parts[1]
            .parse()
            .map_err(|e| format!("line {}: bad cardinality: {e}", lineno + 1))?;
        let attrs: Vec<String> = parts[2]
            .split(',')
            .map(|a| a.trim().to_owned())
            .filter(|a| !a.is_empty())
            .collect();
        let mut builder = SourceBuilder::new(parts[0])
            .attributes(attrs)
            .cardinality(cardinality);
        if let Some(chars) = parts.get(3) {
            for pair in chars.split_whitespace() {
                let (key, value) = pair
                    .split_once('=')
                    .ok_or_else(|| format!("line {}: bad characteristic {pair:?}", lineno + 1))?;
                let value: f64 = value
                    .parse()
                    .map_err(|e| format!("line {}: bad characteristic value: {e}", lineno + 1))?;
                builder = builder.characteristic(key, value);
            }
        }
        universe
            .add_source(builder)
            .map_err(|e| format!("line {}: {e}", lineno + 1))?;
    }
    if universe.is_empty() {
        return Err("universe file contains no sources".to_owned());
    }
    Ok(universe)
}

fn serve_tcp(host: &Arc<SessionHost>, addr: &str) -> Result<ExitCode, String> {
    let listener = std::net::TcpListener::bind(addr).map_err(|e| format!("binding {addr}: {e}"))?;
    eprintln!("mubed: listening on {addr}");
    for stream in listener.incoming() {
        let stream = stream.map_err(|e| format!("accept failed: {e}"))?;
        let reader = stream
            .try_clone()
            .map_err(|e| format!("cloning connection: {e}"))?;
        let host = Arc::clone(host);
        std::thread::spawn(move || {
            let _ = serve_connection(&host, BufReader::new(reader), stream);
        });
    }
    Ok(ExitCode::SUCCESS)
}

// ------------------------------------------------------------------ smoke

/// How many sessions the smoke run hosts concurrently.
const SMOKE_SESSIONS: usize = 4;
/// Completed iterations each session must accumulate.
const SMOKE_ITERATIONS: usize = 3;

/// One client's view of its session: the per-iteration fingerprints
/// (selected source names + exact quality bits) of *completed* solves,
/// plus how many attempts came back cancelled.
struct ClientOutcome {
    session: u64,
    seed: u64,
    fingerprints: Vec<(Vec<String>, String)>,
    cancelled_attempts: usize,
}

/// The concurrency demo: one snapshot, four sessions driven from four
/// client threads through the protocol dispatch layer, a canceller
/// thread firing mid-solve cancels the whole time — then a serial,
/// cancel-free replay of each session, which must match bit for bit.
fn smoke() -> Result<ExitCode, String> {
    let universe = UniverseConfig::small_test(24, 7).generate().universe;
    eprintln!(
        "mubed --smoke: {} sources, building one shared snapshot",
        universe.len()
    );
    let host = Arc::new(SessionHost::new(MubeBuilder::new(&universe).build()));

    // Clients first create their sessions (ids are assigned in creation
    // order, but each client keeps its own).
    let mut clients = Vec::new();
    for i in 0..SMOKE_SESSIONS {
        let seed = 3 + 2 * i as u64;
        let session = host
            .create_session(&SessionSpec {
                max_sources: 4,
                theta: 0.5,
                seed,
                solver: "tabu".to_owned(),
                weights: Vec::new(),
            })
            .map_err(|e| format!("create-session failed: {e}"))?;
        clients.push((session, seed));
    }

    // The canceller: fires every session's token in round-robin for a
    // bounded number of rounds, so early solves are observed mid-flight
    // and later ones run to completion (the run must terminate).
    let canceller = {
        let host = Arc::clone(&host);
        let sessions: Vec<u64> = clients.iter().map(|(s, _)| *s).collect();
        std::thread::spawn(move || {
            let mut fired = 0usize;
            for _ in 0..25 {
                for &session in &sessions {
                    let _ = host.cancel(session);
                    fired += 1;
                }
                std::thread::sleep(std::time::Duration::from_millis(4));
            }
            fired
        })
    };

    let mut workers = Vec::new();
    for (session, seed) in clients {
        let host = Arc::clone(&host);
        let pin = smoke_pin(&universe, seed);
        workers.push(std::thread::spawn(move || {
            drive_client(&host, session, seed, &pin)
        }));
    }
    let outcomes: Vec<ClientOutcome> = workers
        .into_iter()
        .map(|w| w.join().map_err(|_| "client thread panicked".to_owned()))
        .collect::<Result<_, String>>()?;
    let cancels_fired = canceller.join().unwrap_or(0);

    // Serial replay: fresh sessions over the same engine, same seeds and
    // edit script, no cancels, one at a time.
    let mut all_identical = true;
    let total_cancelled: usize = outcomes.iter().map(|o| o.cancelled_attempts).sum();
    for outcome in &outcomes {
        let replay = replay_serial(host.engine(), outcome.seed)?;
        let identical = replay == outcome.fingerprints;
        all_identical &= identical;
        println!(
            "session {} (seed {}): {} completed iterations, {} cancelled attempts, \
             replay bit-identical: {}",
            outcome.session,
            outcome.seed,
            outcome.fingerprints.len(),
            outcome.cancelled_attempts,
            identical
        );
    }
    println!(
        "mubed --smoke: {SMOKE_SESSIONS} concurrent sessions over one snapshot, \
         {cancels_fired} cancels fired ({total_cancelled} landed mid-solve), \
         all replays bit-identical: {all_identical}"
    );
    if all_identical {
        Ok(ExitCode::SUCCESS)
    } else {
        Err("concurrent histories diverged from serial replays".to_owned())
    }
}

/// The per-iteration edit script, identical for the live run and the
/// replay: a weights nudge after the first completed iteration, a source
/// pin after the second.
fn smoke_edit(step: usize, pin: &str) -> Option<Edit> {
    match step {
        1 => Some(Edit::SetWeights(vec![
            ("matching".to_owned(), 0.24),
            ("cardinality".to_owned(), 0.26),
            ("coverage".to_owned(), 0.2),
            ("redundancy".to_owned(), 0.15),
            ("mttf".to_owned(), 0.15),
        ])),
        2 => Some(Edit::RequireSource(pin.to_owned())),
        _ => None,
    }
}

/// Which source a session's script pins: picked from the universe by the
/// session's seed, so each session exercises a different constraint.
fn smoke_pin(universe: &Universe, seed: u64) -> String {
    let index = (seed as usize) % universe.len();
    universe.sources()[index].name().to_owned()
}

/// Drives one session through the host's dispatch layer: keeps issuing
/// `solve` until the required number of iterations *complete*, applying
/// the edit script between completed iterations. Cancelled attempts are
/// counted and retried — by the session contract they must not perturb
/// the completed history.
fn drive_client(host: &Arc<SessionHost>, session: u64, seed: u64, pin: &str) -> ClientOutcome {
    let (tx, rx) = mpsc::channel();
    let mut fingerprints = Vec::new();
    let mut cancelled_attempts = 0usize;
    let mut next_request = 1u64;
    while fingerprints.len() < SMOKE_ITERATIONS {
        if let Some(edit) = smoke_edit(fingerprints.len(), pin) {
            // Idempotence matters here: a retried attempt must not
            // re-apply the edit, so edits key off completed count and the
            // script only fires when the count first reaches the step.
            host.handle_request(
                Request {
                    id: next_request,
                    command: Command::EditConstraints {
                        session,
                        edits: vec![edit],
                    },
                },
                &tx,
            );
            next_request += 1;
            let ack = rx.recv().expect("edit response");
            let ack = Json::parse(&ack).expect("edit response is json");
            assert_eq!(
                ack.get("ok"),
                Some(&Json::Bool(true)),
                "edit failed: {ack:?}"
            );
        }
        host.handle_request(
            Request {
                id: next_request,
                command: Command::Solve { session },
            },
            &tx,
        );
        next_request += 1;
        let line = rx.recv().expect("solve response");
        let response = Json::parse(&line).expect("solve response is json");
        if response.get("ok") != Some(&Json::Bool(true)) {
            // Cancelled before any feasible incumbent: retry.
            cancelled_attempts += 1;
            continue;
        }
        let solution = response.get("solution").expect("solution member");
        if solution.get("cancelled") == Some(&Json::Bool(true)) {
            cancelled_attempts += 1;
            // The protocol still returned an audited incumbent: it must
            // be internally sane even though it will not enter history.
            let quality = solution
                .get("quality")
                .and_then(Json::as_f64)
                .expect("quality");
            assert!(quality.is_finite(), "cancelled incumbent has junk quality");
            continue;
        }
        let selected: Vec<String> = solution
            .get("selected")
            .and_then(Json::as_arr)
            .expect("selected member")
            .iter()
            .filter_map(|s| s.as_str().map(str::to_owned))
            .collect();
        let bits = solution
            .get("quality_bits")
            .and_then(Json::as_str)
            .expect("quality_bits member")
            .to_owned();
        fingerprints.push((selected, bits));
    }
    ClientOutcome {
        session,
        seed,
        fingerprints,
        cancelled_attempts,
    }
}

/// The single-threaded, cancel-free replay of one client's script.
fn replay_serial(mube: &Mube, seed: u64) -> Result<Vec<(Vec<String>, String)>, String> {
    let universe = mube.universe().clone();
    let pin = smoke_pin(&universe, seed);
    let mut session = Session::new(mube, ProblemSpec::new(4).with_theta(0.5)).with_seed(seed);
    let mut out = Vec::new();
    for step in 0..SMOKE_ITERATIONS {
        match smoke_edit(step, &pin) {
            Some(Edit::SetWeights(pairs)) => {
                session.set_weights(
                    Weights::normalized(pairs).map_err(|e| format!("replay weights: {e}"))?,
                );
            }
            Some(Edit::RequireSource(name)) => {
                let id = universe
                    .sources()
                    .iter()
                    .find(|s| s.name() == name)
                    .map(|s| s.id())
                    .ok_or_else(|| format!("replay: no source named {name:?}"))?;
                session.require_source(id);
            }
            Some(_) => return Err("replay: unhandled edit kind".to_owned()),
            None => {}
        }
        let solution = session
            .iterate()
            .map_err(|e| format!("replay solve: {e}"))?;
        let selected = solution
            .selected
            .iter()
            .map(|id| universe.expect_source(*id).name().to_owned())
            .collect();
        out.push((
            selected,
            format!("{:016x}", solution.overall_quality.to_bits()),
        ));
    }
    Ok(out)
}
