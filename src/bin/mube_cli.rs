//! `mube-cli` — command-line front end for the µBE engine.
//!
//! Subcommands:
//!
//! * `generate --sources N [--seed S] [--out FILE]` — synthesize a
//!   Books-domain universe (the paper's §7.1 generator) and write it in the
//!   universe file format.
//! * `solve FILE --max-sources M [--theta T] [--seed S] [--solver NAME]
//!   [--weights name=w,name=w,...] [--require-source NAME]...` — run one
//!   µBE iteration and print the chosen sources and mediated schema.
//! * `match FILE --sources NAME,NAME,... [--theta T]` — run the Match
//!   operator alone on an explicit source set.
//!
//! ## Universe file format
//!
//! Line-based, `#` comments; one source per line:
//!
//! ```text
//! sitename | cardinality | attr1, attr2, attr3 | key=value key=value
//! ```
//!
//! The trailing characteristics section is optional.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::process::ExitCode;

use mube::datagen::UniverseConfig;
use mube::prelude::*;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
usage:
  mube-cli generate --sources N [--seed S] [--out FILE]
  mube-cli solve FILE --max-sources M [--theta T] [--seed S] [--solver NAME]
            [--weights name=w,...] [--require-source NAME]...
  mube-cli match FILE --sources NAME,NAME,... [--theta T]
solvers: tabu (default), sa, pso, sls, greedy, random";

fn run(args: &[String]) -> Result<String, String> {
    let mut args = args.iter().map(String::as_str);
    match args.next() {
        Some("generate") => cmd_generate(&mut args),
        Some("solve") => cmd_solve(&mut args),
        Some("match") => cmd_match(&mut args),
        Some(other) => Err(format!("unknown subcommand {other:?}")),
        None => Err("missing subcommand".to_owned()),
    }
}

/// Parses `--flag value` style options plus positional arguments.
struct Options {
    positional: Vec<String>,
    flags: BTreeMap<String, Vec<String>>,
}

fn parse_options(args: &mut dyn Iterator<Item = &str>) -> Result<Options, String> {
    let mut positional = Vec::new();
    let mut flags: BTreeMap<String, Vec<String>> = BTreeMap::new();
    let mut iter = args.peekable();
    while let Some(arg) = iter.next() {
        if let Some(name) = arg.strip_prefix("--") {
            let value = iter
                .next()
                .ok_or_else(|| format!("flag --{name} needs a value"))?;
            flags
                .entry(name.to_owned())
                .or_default()
                .push(value.to_owned());
        } else {
            positional.push(arg.to_owned());
        }
    }
    Ok(Options { positional, flags })
}

impl Options {
    fn single(&self, name: &str) -> Result<Option<&str>, String> {
        match self.flags.get(name).map(Vec::as_slice) {
            None => Ok(None),
            Some([one]) => Ok(Some(one)),
            Some(_) => Err(format!("flag --{name} given more than once")),
        }
    }

    fn required(&self, name: &str) -> Result<&str, String> {
        self.single(name)?
            .ok_or_else(|| format!("missing required flag --{name}"))
    }

    fn parse<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String>
    where
        T::Err: std::fmt::Display,
    {
        match self.single(name)? {
            None => Ok(default),
            Some(text) => text
                .parse()
                .map_err(|e| format!("invalid value for --{name}: {e}")),
        }
    }
}

// ---------------------------------------------------------------- generate

fn cmd_generate(args: &mut dyn Iterator<Item = &str>) -> Result<String, String> {
    let opts = parse_options(args)?;
    let sources: usize = opts
        .required("sources")?
        .parse()
        .map_err(|e| format!("invalid --sources: {e}"))?;
    let seed: u64 = opts.parse("seed", 42)?;
    let generated = UniverseConfig::small_test(sources, seed).generate();
    let text = format_universe(&generated.universe);
    match opts.single("out")? {
        Some(path) => {
            std::fs::write(path, &text).map_err(|e| format!("writing {path}: {e}"))?;
            Ok(format!("wrote {sources} sources to {path}\n"))
        }
        None => Ok(text),
    }
}

/// Serializes a universe to the file format.
fn format_universe(universe: &Universe) -> String {
    let mut out = String::from("# mube universe: name | cardinality | attrs | characteristics\n");
    for source in universe.sources() {
        let attrs = source.attributes().join(", ");
        let chars = source
            .characteristics()
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect::<Vec<_>>()
            .join(" ");
        let _ = writeln!(
            out,
            "{} | {} | {} | {}",
            source.name(),
            source.cardinality(),
            attrs,
            chars
        );
    }
    out
}

/// Parses the file format into a universe.
fn parse_universe(text: &str) -> Result<Universe, String> {
    let mut universe = Universe::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let parts: Vec<&str> = line.split('|').map(str::trim).collect();
        if parts.len() < 3 {
            return Err(format!(
                "line {}: expected 'name | cardinality | attrs [| characteristics]'",
                lineno + 1
            ));
        }
        let cardinality: u64 = parts[1]
            .parse()
            .map_err(|e| format!("line {}: bad cardinality: {e}", lineno + 1))?;
        let attrs: Vec<String> = parts[2]
            .split(',')
            .map(|a| a.trim().to_owned())
            .filter(|a| !a.is_empty())
            .collect();
        let mut builder = SourceBuilder::new(parts[0])
            .attributes(attrs)
            .cardinality(cardinality);
        if let Some(chars) = parts.get(3) {
            for pair in chars.split_whitespace() {
                let (key, value) = pair
                    .split_once('=')
                    .ok_or_else(|| format!("line {}: bad characteristic {pair:?}", lineno + 1))?;
                let value: f64 = value
                    .parse()
                    .map_err(|e| format!("line {}: bad characteristic value: {e}", lineno + 1))?;
                builder = builder.characteristic(key, value);
            }
        }
        universe
            .add_source(builder)
            .map_err(|e| format!("line {}: {e}", lineno + 1))?;
    }
    if universe.is_empty() {
        return Err("universe file contains no sources".to_owned());
    }
    Ok(universe)
}

fn load_universe(opts: &Options) -> Result<Universe, String> {
    let path = opts
        .positional
        .first()
        .ok_or("missing universe file argument")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    parse_universe(&text)
}

fn source_by_name(universe: &Universe, name: &str) -> Result<SourceId, String> {
    universe
        .sources()
        .iter()
        .find(|s| s.name() == name)
        .map(|s| s.id())
        .ok_or_else(|| format!("no source named {name:?}"))
}

// ------------------------------------------------------------------- solve

fn cmd_solve(args: &mut dyn Iterator<Item = &str>) -> Result<String, String> {
    let opts = parse_options(args)?;
    let universe = load_universe(&opts)?;
    let max_sources: usize = opts
        .required("max-sources")?
        .parse()
        .map_err(|e| format!("invalid --max-sources: {e}"))?;
    let theta: f64 = opts.parse("theta", 0.75)?;
    let seed: u64 = opts.parse("seed", 0)?;

    let weights = match opts.single("weights")? {
        None => default_weights(&universe),
        Some(spec) => {
            let pairs: Result<Vec<(String, f64)>, String> = spec
                .split(',')
                .map(|pair| {
                    let (name, value) = pair
                        .split_once('=')
                        .ok_or_else(|| format!("bad weight {pair:?} (want name=w)"))?;
                    let value: f64 = value
                        .parse()
                        .map_err(|e| format!("bad weight value in {pair:?}: {e}"))?;
                    Ok((name.trim().to_owned(), value))
                })
                .collect();
            Weights::normalized(pairs?)?
        }
    };

    let mut spec = ProblemSpec::new(max_sources)
        .with_weights(weights)
        .with_theta(theta);
    if let Some(required) = opts.flags.get("require-source") {
        for name in required {
            spec = spec.with_source_constraint(source_by_name(&universe, name)?);
        }
    }

    let solver: Box<dyn Solver> = match opts.single("solver")?.unwrap_or("tabu") {
        "tabu" => Box::new(TabuSearch::default()),
        "sa" => Box::new(SimulatedAnnealing::default()),
        "pso" => Box::new(BinaryPso::default()),
        "sls" => Box::new(StochasticLocalSearch::default()),
        "greedy" => Box::new(Greedy::default()),
        "random" => Box::new(RandomSearch::default()),
        other => return Err(format!("unknown solver {other:?}")),
    };

    let mube = MubeBuilder::new(&universe).build();
    let solution = mube
        .solve(&spec, solver.as_ref(), seed)
        .map_err(|e| e.to_string())?;
    Ok(render_solution(&universe, &solution))
}

/// Paper-style weights restricted to QEFs that exist for this universe:
/// always matching/cardinality/coverage/redundancy; mttf only if declared.
fn default_weights(universe: &Universe) -> Weights {
    let has_mttf = universe
        .sources()
        .iter()
        .any(|s| s.characteristic("mttf").is_some());
    if has_mttf {
        Weights::paper_defaults()
    } else {
        Weights::new([
            ("matching", 0.3),
            ("cardinality", 0.3),
            ("coverage", 0.25),
            ("redundancy", 0.15),
        ])
        .expect("static weights valid")
    }
}

fn render_solution(universe: &Universe, solution: &Solution) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Q(S) = {:.4} with {} sources ({} Match calls, {:?})",
        solution.overall_quality,
        solution.num_sources(),
        solution.stats.match_calls,
        solution.stats.elapsed
    );
    for (name, (w, v)) in &solution.qef_values {
        let _ = writeln!(out, "  {name:<12} weight {w:.2}  value {v:.4}");
    }
    let _ = writeln!(out, "selected sources:");
    for id in &solution.selected {
        let _ = writeln!(out, "  {}", universe.expect_source(*id).name());
    }
    let _ = writeln!(out, "mediated schema ({} GAs):", solution.schema.len());
    out.push_str(&render_schema(universe, &solution.schema));
    out
}

fn render_schema(universe: &Universe, schema: &MediatedSchema) -> String {
    let mut out = String::new();
    for ga in schema.gas() {
        let names: Vec<String> = ga
            .attrs()
            .map(|a| {
                format!(
                    "{}:{}",
                    universe.expect_source(a.source).name(),
                    universe.attr_name(a).unwrap_or("?")
                )
            })
            .collect();
        let _ = writeln!(out, "  {{{}}}", names.join(" | "));
    }
    out
}

// ------------------------------------------------------------------- match

fn cmd_match(args: &mut dyn Iterator<Item = &str>) -> Result<String, String> {
    let opts = parse_options(args)?;
    let universe = load_universe(&opts)?;
    let theta: f64 = opts.parse("theta", 0.75)?;
    let names = opts.required("sources")?;
    let ids: Result<Vec<SourceId>, String> = names
        .split(',')
        .map(|n| source_by_name(&universe, n.trim()))
        .collect();
    let ids = ids?;

    let measure = NgramJaccard::default();
    let adapter = mube::cluster::MeasureAdapter::new(&universe, &measure);
    let config = MatchConfig {
        theta,
        ..MatchConfig::default()
    };
    let outcome =
        mube::cluster::match_sources(&universe, &ids, &Constraints::none(), &config, &adapter)
            .ok_or("no matching satisfies the constraints")?;
    let mut out = format!(
        "matching quality F1 = {:.4} over {} sources ({} GAs)\n",
        outcome.quality,
        ids.len(),
        outcome.schema.len()
    );
    out.push_str(&render_schema(&universe, &outcome.schema));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# demo universe
alpha.com | 1000 | title, author, isbn | mttf=100 latency=50
beta.org  | 2000 | title, author       | mttf=80
gamma.net | 500  | voltage, turbine    |
";

    #[test]
    fn parse_roundtrip() {
        let u = parse_universe(SAMPLE).unwrap();
        assert_eq!(u.len(), 3);
        assert_eq!(u.expect_source(SourceId(0)).name(), "alpha.com");
        assert_eq!(u.expect_source(SourceId(0)).arity(), 3);
        assert_eq!(
            u.expect_source(SourceId(0)).characteristic("mttf"),
            Some(100.0)
        );
        assert_eq!(u.expect_source(SourceId(1)).cardinality(), 2000);
        assert_eq!(u.expect_source(SourceId(2)).characteristics().len(), 0);
        // Serialize and re-parse: same universe.
        let text = format_universe(&u);
        let again = parse_universe(&text).unwrap();
        assert_eq!(u, again);
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!(parse_universe("just one field").is_err());
        assert!(parse_universe("name | notanumber | a, b").is_err());
        assert!(parse_universe("name | 10 | a | badpair").is_err());
        assert!(parse_universe("# only comments\n").is_err());
    }

    #[test]
    fn solve_subcommand_end_to_end() {
        let dir = std::env::temp_dir().join("mube_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("u.mube");
        std::fs::write(&path, SAMPLE).unwrap();
        let args: Vec<String> = vec![
            "solve".into(),
            path.to_str().unwrap().into(),
            "--max-sources".into(),
            "2".into(),
            "--weights".into(),
            "matching=1".into(),
            "--theta".into(),
            "0.7".into(),
        ];
        let output = run(&args).unwrap();
        assert!(output.contains("Q(S)"), "{output}");
        assert!(
            output.contains("alpha.com") && output.contains("beta.org"),
            "{output}"
        );
        assert!(!output.contains("gamma.net"), "{output}");
    }

    #[test]
    fn match_subcommand_end_to_end() {
        let dir = std::env::temp_dir().join("mube_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("m.mube");
        std::fs::write(&path, SAMPLE).unwrap();
        let args: Vec<String> = vec![
            "match".into(),
            path.to_str().unwrap().into(),
            "--sources".into(),
            "alpha.com,beta.org".into(),
        ];
        let output = run(&args).unwrap();
        assert!(output.contains("F1 = 1.0000"), "{output}");
        assert!(
            output.contains("alpha.com:title | beta.org:title"),
            "{output}"
        );
    }

    #[test]
    fn generate_subcommand_produces_parseable_output() {
        let args: Vec<String> = vec![
            "generate".into(),
            "--sources".into(),
            "12".into(),
            "--seed".into(),
            "3".into(),
        ];
        let output = run(&args).unwrap();
        let u = parse_universe(&output).unwrap();
        assert_eq!(u.len(), 12);
    }

    #[test]
    fn unknown_subcommand_errors() {
        assert!(run(&["frobnicate".to_owned()]).is_err());
        assert!(run(&[]).is_err());
    }

    #[test]
    fn flag_errors_are_reported() {
        let args: Vec<String> = vec![
            "solve".into(),
            "/nonexistent".into(),
            "--max-sources".into(),
            "2".into(),
        ];
        assert!(run(&args).unwrap_err().contains("reading"));
        let args: Vec<String> = vec!["generate".into()];
        assert!(run(&args).unwrap_err().contains("--sources"));
    }

    #[test]
    fn require_source_constraint_applies() {
        let dir = std::env::temp_dir().join("mube_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("c.mube");
        std::fs::write(&path, SAMPLE).unwrap();
        // gamma.net matches nothing, so requiring it must fail (no valid M
        // spans it) — the error is the honest outcome.
        let args: Vec<String> = vec![
            "solve".into(),
            path.to_str().unwrap().into(),
            "--max-sources".into(),
            "3".into(),
            "--weights".into(),
            "matching=1".into(),
            "--require-source".into(),
            "gamma.net".into(),
        ];
        assert!(run(&args).is_err());
        // Requiring beta.org succeeds and includes it.
        let args: Vec<String> = vec![
            "solve".into(),
            path.to_str().unwrap().into(),
            "--max-sources".into(),
            "2".into(),
            "--weights".into(),
            "matching=1".into(),
            "--require-source".into(),
            "beta.org".into(),
        ];
        let output = run(&args).unwrap();
        assert!(output.contains("beta.org"), "{output}");
    }
}
