//! # µBE — user-guided source selection and schema mediation
//!
//! A from-scratch Rust reproduction of *"µBE: User Guided Source Selection
//! and Schema Mediation for Internet Scale Data Integration"* (Aboulnaga &
//! El Gebaly, ICDE 2007).
//!
//! µBE helps a user build an Internet-scale data integration system by
//! *simultaneously* choosing which data sources to include and deriving a
//! mediated schema over them, instead of fixing a mediated schema up front.
//! The choice is driven by a constrained non-linear optimization problem
//! over quality dimensions — schema matching quality, data cardinality /
//! coverage / redundancy, and arbitrary source characteristics — that the
//! user steers across iterations by pinning sources, pinning global
//! attributes ("matching by example"), and reweighting.
//!
//! ## Quick start
//!
//! ```
//! use mube::prelude::*;
//!
//! // 1. Describe candidate sources (schemas + cardinalities + characteristics).
//! let mut universe = Universe::new();
//! for (site, attrs, tuples) in [
//!     ("aceticket.com", vec!["state", "city", "event", "venue"], 50_000u64),
//!     ("lastminute.com", vec!["event name", "event type", "location"], 80_000),
//!     ("wstonline.org", vec!["keyword", "after date", "before date"], 20_000),
//!     ("officiallondontheatre.co.uk", vec!["keyword", "after date", "before date"], 30_000),
//! ] {
//!     universe
//!         .add_source(SourceBuilder::new(site).attributes(attrs).cardinality(tuples))
//!         .unwrap();
//! }
//!
//! // 2. Build the engine (similarity matrix etc.) and a problem spec.
//! let mube = MubeBuilder::new(&universe).build();
//! let spec = ProblemSpec::new(2) // select at most 2 sources
//!     .with_weights(Weights::new([("matching", 1.0)]).unwrap())
//!     .with_theta(0.6);
//!
//! // 3. Solve and inspect.
//! let solution = mube.solve_default(&spec, 42).unwrap();
//! assert_eq!(solution.num_sources(), 2);
//! println!("{solution}");
//! ```
//!
//! ## Crate map
//!
//! | Crate | Contents |
//! |---|---|
//! | [`schema`] | sources, attributes, GAs, mediated schemas, constraints |
//! | [`similarity`] | 3-gram Jaccard (paper default) + alternative measures |
//! | [`pcsa`] | Flajolet–Martin PCSA sketches for union cardinalities |
//! | [`cluster`] | the `Match(S)` operator (Algorithm 1) |
//! | [`qef`] | cardinality / coverage / redundancy / characteristic QEFs |
//! | [`opt`] | tabu search and the other solvers, subset-problem framework |
//! | [`datagen`] | the paper's synthetic experimental universe (§7.1) |
//! | [`core`] | the engine: objective, solve, iterative sessions |
//! | [`serve`] | the `mubed` session host: concurrent sessions over one snapshot |

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub use mube_baseline as baseline;
pub use mube_cluster as cluster;
pub use mube_core as core;
pub use mube_datagen as datagen;
pub use mube_opt as opt;
pub use mube_pcsa as pcsa;
pub use mube_qef as qef;
pub use mube_schema as schema;
pub use mube_serve as serve;
pub use mube_similarity as similarity;

/// One-stop imports for typical use.
pub mod prelude {
    pub use mube_baseline::{DeaBaseline, TopCardinality};
    pub use mube_cluster::{Linkage, MatchConfig};
    pub use mube_core::{
        CancelToken, EvalArena, Mube, MubeBuilder, MubeError, ProblemSpec, Session, Solution,
        SolutionDiff, SpecDelta, UniverseSnapshot,
    };
    pub use mube_opt::{
        BatchEvaluator, BinaryPso, Exhaustive, Greedy, Portfolio, PortfolioMember,
        PortfolioOutcome, RandomSearch, SimulatedAnnealing, Solver, StochasticLocalSearch,
        TabuSearch,
    };
    pub use mube_pcsa::{PcsaSketch, TupleHasher};
    pub use mube_qef::{Aggregation, CharacteristicQef, FnQef, Qef, QefContext, Weights};
    pub use mube_schema::{
        AttrId, Constraints, GlobalAttribute, MediatedSchema, SchemaMapping, Source, SourceBuilder,
        SourceId, SourceSelection, Universe,
    };
    pub use mube_similarity::{NgramJaccard, SimilarityMeasure};
}
