#!/usr/bin/env python3
"""Fills EXPERIMENTS.md placeholders from experiment_runs.txt.

Each `{{TAG}}` placeholder is replaced by the corresponding binary's table
output (everything between its `### name` header and the next `###`, with
compile noise stripped).
"""

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
RUNS = ROOT / "experiment_runs.txt"
DOC = ROOT / "EXPERIMENTS.md"

TAG_TO_BIN = {
    "FIG5": "fig5",
    "FIG6": "fig6",
    "FIG7": "fig7",
    "FIG8": "fig8",
    "TABLE1": "table1",
    "SENSITIVITY": "sensitivity",
    "PCSA": "pcsa_accuracy",
    "OPTIMIZER": "optimizer_comparison",
    "DEA": "dea_baseline",
    "THETA": "theta_sweep",
    "CACHE": "ablation_cache",
}


def sections(text: str) -> dict[str, str]:
    out: dict[str, str] = {}
    current = None
    lines: list[str] = []
    for line in text.splitlines():
        if line.startswith("### "):
            if current:
                out[current] = "\n".join(lines).strip()
            current = line[4:].strip()
            lines = []
        elif current:
            if re.match(r"\s*(Compiling|Finished|Running|warning)", line):
                continue
            lines.append(line.rstrip())
    if current:
        out[current] = "\n".join(lines).strip()
    return out


def main() -> int:
    runs = sections(RUNS.read_text())
    doc = DOC.read_text()
    missing = []
    for tag, bin_name in TAG_TO_BIN.items():
        placeholder = "{{" + tag + "}}"
        if placeholder not in doc:
            continue
        body = runs.get(bin_name)
        if not body:
            missing.append(bin_name)
            continue
        doc = doc.replace(placeholder, body)
    DOC.write_text(doc)
    if missing:
        print(f"warning: no output found for: {', '.join(missing)}")
        return 1
    print("EXPERIMENTS.md filled.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
