#!/usr/bin/env bash
# Full CI gauntlet for the mube workspace. Every step must pass; the first
# failure aborts the run. Referenced from ROADMAP.md (tier-1 verify) and
# README.md (§Checks).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> mube-xtask lint (no-panic / float-eq / crate-attrs / no-hash-iter /"
echo "    no-ambient-entropy / float-ord / lock-discipline; report at target/lint-report.json)"
cargo run -q -p mube-xtask -- lint

echo "==> lint allowlist round-trip (lint-allow.txt counts match the tree)"
cp lint-allow.txt target/lint-allow.pre
cargo run -q -p mube-xtask -- lint --update-allowlist >/dev/null
diff -u target/lint-allow.pre lint-allow.txt

echo "==> cargo clippy --workspace (warnings denied)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test -q (workspace)"
cargo test -q --workspace

echo "==> width-1 determinism pass (batched paths forced serial)"
MUBE_BATCH_THREADS=1 cargo test -q -p mube-opt --test props

echo "==> bench harness smoke (match + solve + session + kernels + bound harnesses"
echo "    run, JSON schemas intact, packed/scalar bit-identity asserted)"
scripts/bench.sh --smoke

echo "==> exact-solver smoke contracts (bnb == exhaustive at smoke scale, no"
echo "    negative certified gap anywhere in the artifact)"
grep -q '"matches_exhaustive": true' target/BENCH_bound.smoke.json
! grep -q '"gap": -' target/BENCH_bound.smoke.json

echo "==> sparse-at-scale smoke contracts (sparse/dense bit-identity + solve identity"
echo "    asserted in-bin, dense refused its budget, spill path exercised)"
grep -q '"bit_identical": true' target/BENCH_scale.smoke.json
grep -q '"dense_refused": true' target/BENCH_scale.smoke.json

echo "==> tenancy smoke contracts (concurrent sessions bit-identical to serial"
echo "    replay, arena counts session-local — asserted in-bin)"
grep -q '"replay_bit_identical": true' target/BENCH_tenancy.smoke.json

echo "==> mubed serving smoke (4 concurrent sessions under a cancel storm,"
echo "    every history bit-identical to its serial cancel-free replay)"
cargo run --release -q --bin mubed -- --smoke

echo "==> committed kernel trajectory carries the full-run threshold verdict"
grep -q '"meets_thresholds": true' BENCH_kernels.json

echo "==> committed bound trajectory certifies exactness and closes its gaps"
grep -q '"matches_exhaustive": true' BENCH_bound.json
! grep -q '"gap": -' BENCH_bound.json

echo "==> committed scale trajectory certifies losslessness and the dense refusal"
grep -q '"bit_identical": true' BENCH_scale.json
grep -q '"dense_refused": true' BENCH_scale.json

echo "==> committed tenancy trajectory certifies concurrent/serial bit-identity"
grep -q '"replay_bit_identical": true' BENCH_tenancy.json

echo "All checks passed."
