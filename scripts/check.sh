#!/usr/bin/env bash
# Full CI gauntlet for the mube workspace. Every step must pass; the first
# failure aborts the run. Referenced from ROADMAP.md (tier-1 verify) and
# README.md (§Checks).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> mube-xtask lint (no-panic / float-eq / crate-attrs)"
cargo run -q -p mube-xtask -- lint

echo "==> cargo clippy --workspace (warnings denied)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test -q (workspace)"
cargo test -q --workspace

echo "==> width-1 determinism pass (batched paths forced serial)"
MUBE_BATCH_THREADS=1 cargo test -q -p mube-opt --test props

echo "==> bench harness smoke (match + solve + session harnesses run, JSON schemas intact)"
scripts/bench.sh --smoke

echo "All checks passed."
