#!/usr/bin/env bash
# Regenerates the persistent perf trajectories (Match kernel + solve stack +
# iterative session + packed similarity kernels + exact-solver gap closure).
#
#   scripts/bench.sh           full run; rewrites BENCH_match.json,
#                              BENCH_solve.json, BENCH_session.json,
#                              BENCH_kernels.json, BENCH_bound.json,
#                              BENCH_scale.json and BENCH_tenancy.json
#                              (all checked in)
#   scripts/bench.sh --smoke   tiny sizes, one rep; writes target/*.smoke.json
#                              (not checked in) — wired into scripts/check.sh as a
#                              cheap "the harness still runs end to end" gate.
#
# Full runs should happen on a quiet machine; the harnesses take best-of-N
# wall times for the in-tree arms. The solve harness asserts the determinism
# contract (serial re-run byte-identical, batched == serial); the session
# harness asserts that arena-backed and cold sessions produce bit-identical
# histories; the kernels harness asserts packed/scalar bit-identity in every
# mode and the acceptance thresholds (≥3x pairwise Jaccard, ≥2x matrix fill)
# in full mode. See DESIGN.md §8 (Match kernel), §9 (solve stack), §10
# (session arena), §12 (packed kernels) and §13 (exact branch-and-bound) for
# how to read the output. The bound harness asserts its own contracts in-bin:
# certified gaps non-negative and non-increasing along the budget ladder, and
# the unlimited run bit-identical to the exhaustive enumerator at n=12. The
# scale harness (DESIGN.md §14) asserts sparse/dense bit-identity and solve
# identity every run, and that the dense backend refuses its memory budget
# at the 10k-source tier while the spill-backed sparse build carries Match
# and the greedy solve anyway.
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ "${1:-}" == "--smoke" ]]; then
  cargo run --release -q -p mube-bench --bin match_kernel -- --smoke --out target/BENCH_match.smoke.json
  cargo run --release -q -p mube-bench --bin solve_portfolio -- --smoke --out target/BENCH_solve.smoke.json
  cargo run --release -q -p mube-bench --bin session_iterate -- --smoke --out target/BENCH_session.smoke.json
  cargo run --release -q -p mube-bench --bin sim_kernels -- --smoke --out target/BENCH_kernels.smoke.json
  cargo run --release -q -p mube-bench --bin bound_gap -- --smoke --out target/BENCH_bound.smoke.json
  cargo run --release -q -p mube-bench --bin scale_match -- --smoke --out target/BENCH_scale.smoke.json
  cargo run --release -q -p mube-bench --bin tenancy -- --smoke --out target/BENCH_tenancy.smoke.json
else
  cargo run --release -q -p mube-bench --bin match_kernel
  cargo run --release -q -p mube-bench --bin solve_portfolio
  cargo run --release -q -p mube-bench --bin session_iterate
  cargo run --release -q -p mube-bench --bin sim_kernels
  cargo run --release -q -p mube-bench --bin bound_gap
  cargo run --release -q -p mube-bench --bin scale_match
  cargo run --release -q -p mube-bench --bin tenancy
fi
