#!/usr/bin/env bash
# Regenerates the persistent Match-kernel perf trajectory.
#
#   scripts/bench.sh           full run; rewrites BENCH_match.json (checked in)
#   scripts/bench.sh --smoke   tiny sizes, one rep; writes target/BENCH_match.smoke.json
#                              (not checked in) — wired into scripts/check.sh as a
#                              cheap "the harness still runs end to end" gate.
#
# Full runs should happen on a quiet machine; the harness takes best-of-3
# wall times for the in-tree kernels and a single timed run of the slow
# pre-PR reference. See DESIGN.md §8 for how to read the output.
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ "${1:-}" == "--smoke" ]]; then
  cargo run --release -q -p mube-bench --bin match_kernel -- --smoke --out target/BENCH_match.smoke.json
else
  cargo run --release -q -p mube-bench --bin match_kernel
fi
