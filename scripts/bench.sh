#!/usr/bin/env bash
# Regenerates the persistent perf trajectories (Match kernel + solve stack +
# iterative session).
#
#   scripts/bench.sh           full run; rewrites BENCH_match.json,
#                              BENCH_solve.json and BENCH_session.json (all
#                              checked in)
#   scripts/bench.sh --smoke   tiny sizes, one rep; writes target/*.smoke.json
#                              (not checked in) — wired into scripts/check.sh as a
#                              cheap "the harness still runs end to end" gate.
#
# Full runs should happen on a quiet machine; the harnesses take best-of-N
# wall times for the in-tree arms. The solve harness asserts the determinism
# contract (serial re-run byte-identical, batched == serial); the session
# harness asserts that arena-backed and cold sessions produce bit-identical
# histories. See DESIGN.md §8 (Match kernel), §9 (solve stack) and §10
# (session arena) for how to read the output.
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ "${1:-}" == "--smoke" ]]; then
  cargo run --release -q -p mube-bench --bin match_kernel -- --smoke --out target/BENCH_match.smoke.json
  cargo run --release -q -p mube-bench --bin solve_portfolio -- --smoke --out target/BENCH_solve.smoke.json
  cargo run --release -q -p mube-bench --bin session_iterate -- --smoke --out target/BENCH_session.smoke.json
else
  cargo run --release -q -p mube-bench --bin match_kernel
  cargo run --release -q -p mube-bench --bin solve_portfolio
  cargo run --release -q -p mube-bench --bin session_iterate
fi
