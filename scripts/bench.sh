#!/usr/bin/env bash
# Regenerates the persistent perf trajectories (Match kernel + solve stack).
#
#   scripts/bench.sh           full run; rewrites BENCH_match.json and
#                              BENCH_solve.json (both checked in)
#   scripts/bench.sh --smoke   tiny sizes, one rep; writes target/*.smoke.json
#                              (not checked in) — wired into scripts/check.sh as a
#                              cheap "the harness still runs end to end" gate.
#
# Full runs should happen on a quiet machine; both harnesses take best-of-3
# wall times for the in-tree arms. The solve harness also asserts the
# determinism contract (serial re-run byte-identical, batched == serial).
# See DESIGN.md §8 (Match kernel) and §9 (solve stack) for how to read the
# output.
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ "${1:-}" == "--smoke" ]]; then
  cargo run --release -q -p mube-bench --bin match_kernel -- --smoke --out target/BENCH_match.smoke.json
  cargo run --release -q -p mube-bench --bin solve_portfolio -- --smoke --out target/BENCH_solve.smoke.json
else
  cargo run --release -q -p mube-bench --bin match_kernel
  cargo run --release -q -p mube-bench --bin solve_portfolio
fi
