//! Compares the four metaheuristics the paper evaluated (tabu search,
//! constrained simulated annealing, binary PSO, stochastic local search)
//! plus greedy and random baselines, on one µBE problem instance.
//!
//! The paper's finding — "we found that tabu search gives the best
//! results" — is reproduced quantitatively by the `optimizer_comparison`
//! bench binary; this example shows the API for plugging any solver in.
//!
//! Run with: `cargo run --release --example optimizer_shootout`

use mube::datagen::UniverseConfig;
use mube::prelude::*;

fn main() {
    let generated = UniverseConfig::small_test(120, 3).generate();
    let mube = MubeBuilder::new(&generated.universe)
        .sketches(generated.sketches.clone())
        .build();
    let spec = ProblemSpec::new(15);

    let solvers: Vec<Box<dyn Solver>> = vec![
        Box::new(TabuSearch::default()),
        Box::new(SimulatedAnnealing::default()),
        Box::new(BinaryPso::default()),
        Box::new(StochasticLocalSearch::default()),
        Box::new(Greedy::default()),
        Box::new(RandomSearch::default()),
    ];

    println!(
        "{:<24} {:>8} {:>10} {:>10} {:>12}",
        "solver", "Q(S)", "evals", "match", "elapsed"
    );
    for solver in &solvers {
        // Average over three seeds for a fair glimpse; the bench harness
        // does this properly with more repetitions.
        let mut best_q = f64::NEG_INFINITY;
        let mut total_q = 0.0;
        let mut evals = 0u64;
        let mut matches = 0u64;
        let mut elapsed = std::time::Duration::ZERO;
        const SEEDS: u64 = 3;
        for seed in 0..SEEDS {
            let solution = mube
                .solve(&spec, solver.as_ref(), seed)
                .expect("unconstrained problem always feasible");
            total_q += solution.overall_quality;
            best_q = best_q.max(solution.overall_quality);
            evals += solution.stats.evaluations;
            matches += solution.stats.match_calls;
            elapsed += solution.stats.elapsed;
        }
        println!(
            "{:<24} {:>8.4} {:>10} {:>10} {:>12?}   (best {best_q:.4})",
            solver.name(),
            total_q / SEEDS as f64,
            evals / SEEDS,
            matches / SEEDS,
            elapsed / SEEDS as u32,
        );
    }
}
