//! Incremental source discovery: the Internet-scale workflow the paper
//! motivates. A hidden-Web search engine (here: the synthetic generator)
//! keeps surfacing new candidate sources in batches; after each batch the
//! user re-runs µBE over the grown universe and inspects what changed.
//!
//! Demonstrates that (a) the engine is cheap enough to rebuild as the
//! universe grows, and (b) [`SolutionDiff`] pinpoints what each batch
//! changed. Note that `Q(S)` is normalized against the *current* universe
//! (Card and Coverage divide by universe totals), so absolute values are
//! not comparable across batches — the diff is the meaningful signal.
//!
//! Run with: `cargo run --release --example discovery_stream`

use mube::datagen::UniverseConfig;
use mube::prelude::*;

fn main() {
    // The "full crawl" the search engine will eventually surface.
    let full = UniverseConfig::small_test(160, 5).generate();
    let all_sources = &full.universe;

    let batch_sizes = [40usize, 80, 120, 160];
    let mut previous: Option<Solution> = None;

    for &visible in &batch_sizes {
        // Universe as discovered so far: the first `visible` sources.
        let mut universe = Universe::new();
        for source in all_sources.sources().iter().take(visible) {
            let mut builder = SourceBuilder::new(source.name())
                .attributes(source.attributes().to_vec())
                .cardinality(source.cardinality());
            for (name, &value) in source.characteristics() {
                builder = builder.characteristic(name.clone(), value);
            }
            universe.add_source(builder).expect("well-formed");
        }
        let sketches: Vec<_> = full.sketches.iter().take(visible).cloned().collect();

        let mube = MubeBuilder::new(&universe).sketches(sketches).build();
        let spec = ProblemSpec::new(15);
        let solution = mube.solve_default(&spec, 3).expect("solvable");

        println!(
            "discovered {visible:>3} sources -> Q = {:.4}, {} GAs, solved in {:?}",
            solution.overall_quality,
            solution.schema.len(),
            solution.stats.elapsed
        );
        if let Some(prev) = &previous {
            let diff = SolutionDiff::between(prev, &solution);
            println!(
                "   vs previous batch: ΔQ = {:+.4}, {} source changes, {} GA changes",
                diff.quality_delta,
                diff.source_changes(),
                diff.ga_changes()
            );
        }
        previous = Some(solution);
    }

    println!(
        "\nthe exploration loop the paper targets: discover, solve, inspect, repeat —\n\
         constraints adopted along the way would persist across batches via Session."
    );
}
