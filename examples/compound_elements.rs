//! n:m matching through compound schema elements (the paper's Section 2.1
//! extension), composed with GA constraints (the paper's "matching by
//! example").
//!
//! Two directory sites split the address concept across three attributes
//! (`street`, `city`, `zip`); two keep it whole (`address` /
//! `full address`). No string measure can align `street`+`city`+`zip` with
//! `address` — the names share nothing. The µBE way: (1) fuse the split
//! attributes into a compound element, turning the n:m match into 1:1, and
//! (2) bridge the remaining semantic gap with a single GA constraint. The
//! constraint then *grows* by similarity to cover all four sources.
//!
//! Run with: `cargo run --example compound_elements`

use mube::prelude::*;
use mube::schema::{CompoundGroup, CompoundUniverse};

fn main() {
    let mut universe = Universe::new();
    let sites: [(&str, Vec<&str>); 4] = [
        ("split-a.com", vec!["street", "city", "zip", "phone"]),
        ("split-b.org", vec!["street", "city", "zip", "email"]),
        ("whole-c.net", vec!["address", "phone"]),
        ("whole-d.io", vec!["full address", "email"]),
    ];
    for (site, attrs) in sites {
        universe
            .add_source(
                SourceBuilder::new(site)
                    .attributes(attrs)
                    .cardinality(1_000),
            )
            .unwrap();
    }

    let spec = ProblemSpec::new(4)
        .with_weights(Weights::new([("matching", 1.0)]).unwrap())
        .with_theta(0.4);

    // --- Plain 1:1 matching: the address concept stays fragmented. ---
    let mube = MubeBuilder::new(&universe).build();
    let plain = mube.solve_default(&spec, 1).unwrap();
    println!("=== plain 1:1 matching (θ = 0.4) ===");
    print_gas(&universe, &plain.schema);
    let bridged = plain.schema.gas().iter().any(|ga| {
        let whole = ga
            .attrs()
            .any(|a| universe.attr_name(a).is_some_and(|n| n.contains("address")));
        let split = ga
            .attrs()
            .any(|a| universe.attr_name(a).is_some_and(|n| n == "street"));
        whole && split
    });
    assert!(
        !bridged,
        "no measure should bridge street/city/zip to address"
    );

    // --- Step 1: fuse the split attributes into compound elements. ---
    let groups = [
        CompoundGroup {
            source: SourceId(0),
            attrs: vec![0, 1, 2],
        },
        CompoundGroup {
            source: SourceId(1),
            attrs: vec![0, 1, 2],
        },
    ];
    let compound = CompoundUniverse::new(&universe, &groups).expect("valid groups");
    println!("\nfused: split sites now expose the compound element \"street city zip\"");

    // --- Step 2: one GA constraint bridges compound ↔ whole address. ---
    let fused_attr = AttrId::new(SourceId(0), 0); // split-a's compound
    let address_attr = compound
        .universe()
        .all_attrs()
        .find(|a| compound.universe().attr_name(*a) == Some("address"))
        .expect("whole-c has an address attribute");
    let bridge = GlobalAttribute::new([fused_attr, address_attr]).unwrap();
    let spec2 = spec.clone().with_ga_constraint(bridge.clone());

    let mube2 = MubeBuilder::new(compound.universe()).build();
    let fused = mube2.solve_default(&spec2, 1).unwrap();
    println!("\n=== compound elements + bridging GA constraint ===");
    print_gas(compound.universe(), &fused.schema);

    // The constraint grew: split-b's identical compound joins at sim 1.0,
    // and whole-d's "full address" joins via "address".
    let address_ga = fused
        .schema
        .ga_of(fused_attr)
        .expect("constraint GA present");
    assert!(
        address_ga.len() == 4,
        "address GA should span all four sources, got {address_ga}"
    );

    println!("\nexpanded n:m correspondence over the original schemas:");
    let expanded = compound.expand_ga(address_ga);
    let names: Vec<String> = expanded
        .iter()
        .map(|a| {
            format!(
                "{}:{}",
                universe.expect_source(a.source).name(),
                universe.attr_name(*a).unwrap_or("?")
            )
        })
        .collect();
    println!("  {{{}}}", names.join(" | "));
    println!(
        "\nthe address concept now spans {} original attributes across 4 sources.",
        expanded.len()
    );
}

fn print_gas(universe: &Universe, schema: &MediatedSchema) {
    for ga in schema.gas() {
        let names: Vec<String> = ga
            .attrs()
            .map(|a| {
                format!(
                    "{}:{}",
                    universe.expect_source(a.source).name(),
                    universe.attr_name(a).unwrap_or("?")
                )
            })
            .collect();
        println!("  GA {{{}}}", names.join(" | "));
    }
}
