//! An end-to-end iterative exploration on the paper's synthetic Books
//! universe: generate 200 sources (50 BAMM-style bases + perturbed copies),
//! run µBE, inspect ground-truth quality, then guide it with feedback.
//!
//! Run with: `cargo run --release --example books_iterative`

use mube::datagen::{GroundTruth, UniverseConfig};
use mube::prelude::*;

fn main() {
    // Scaled-down data volumes so the example runs fast even in debug; pass
    // --full for the paper's 10k..1M cardinalities.
    let full = std::env::args().any(|a| a == "--full");
    let config = if full {
        UniverseConfig::paper(200, 1)
    } else {
        UniverseConfig::small_test(200, 1)
    };
    println!("generating {}-source Books universe...", config.num_sources);
    let generated = config.generate();
    let universe = &generated.universe;

    println!(
        "universe: {} sources, {} attributes, {} total tuples",
        universe.len(),
        universe.total_attrs(),
        universe.total_cardinality()
    );

    let mube = MubeBuilder::new(universe)
        .sketches(generated.sketches.clone())
        .build();

    // Iteration 1: paper defaults, choose 20 sources.
    let spec = ProblemSpec::new(20); // paper-default weights, θ = 0.75
    let mut session = Session::new(&mube, spec).with_seed(11);
    let first = session.iterate().expect("iteration 1 solves").clone();
    report(
        universe,
        &generated.ground_truth,
        &first,
        "iteration 1 (defaults)",
    );

    // Feedback A: the user cares about breadth of data — upweight coverage.
    session.set_weights(
        Weights::new([
            ("matching", 0.2),
            ("cardinality", 0.15),
            ("coverage", 0.4),
            ("redundancy", 0.15),
            ("mttf", 0.1),
        ])
        .unwrap(),
    );
    let second = session.iterate().expect("iteration 2 solves").clone();
    report(
        universe,
        &generated.ground_truth,
        &second,
        "iteration 2 (coverage-heavy)",
    );

    // Feedback B: pin a favorite source (people have preferred shops) and
    // adopt the largest GA from the previous output as a constraint, so it
    // can only grow from here.
    let favorite = SourceId(0);
    session.require_source(favorite);
    if let Some(biggest) = second
        .schema
        .gas()
        .iter()
        .max_by_key(|ga| ga.len())
        .cloned()
    {
        println!(
            "adopting GA with {} attributes as a constraint, pinning {}",
            biggest.len(),
            universe.expect_source(favorite).name()
        );
        session.adopt_ga(biggest);
    }
    let third = session.iterate().expect("iteration 3 solves").clone();
    report(
        universe,
        &generated.ground_truth,
        &third,
        "iteration 3 (pinned + adopted GA)",
    );

    assert!(third.selected.contains(&favorite));
    println!("session history: {} iterations", session.history().len());
}

fn report(universe: &Universe, gt: &GroundTruth, solution: &Solution, label: &str) {
    let score = gt.score(&solution.schema, solution.selected.iter().copied());
    println!("\n=== {label} ===");
    println!(
        "Q = {:.4}; {} sources; {} GAs; {:?} ({} Match calls, {} cache hits)",
        solution.overall_quality,
        solution.num_sources(),
        solution.schema.len(),
        solution.stats.elapsed,
        solution.stats.match_calls,
        solution.stats.cache_hits,
    );
    // The session's persistent arena at work: entries surviving from prior
    // iterations, how many were recombined under new weights without a
    // Match(S) call, and how many the spec delta invalidated.
    println!(
        "  arena: {:?} delta; {} reused, {} recombined, {} invalidated{}",
        solution.stats.spec_delta,
        solution.stats.reused,
        solution.stats.recombined,
        solution.stats.invalidated,
        if solution.stats.warm_start {
            "; warm start"
        } else {
            ""
        },
    );
    for (name, (w, v)) in &solution.qef_values {
        println!("  {name:<12} weight {w:.2}  value {v:.4}");
    }
    println!(
        "  ground truth: {} true GAs (of {}), {} attrs covered, {} missed, {} false, {} noise",
        score.true_gas,
        gt.max_true_gas(),
        score.attrs_in_true_gas,
        score.missed,
        score.false_gas,
        score.noise_gas
    );
    let _ = universe;
}
