//! Quickstart: define a handful of sources, solve, print the solution.
//!
//! Run with: `cargo run --example quickstart`

use mube::prelude::*;

fn main() {
    // A small universe of book-selling sites. In a real deployment these
    // descriptions come from a hidden-Web search engine or are supplied by
    // the user; cardinalities and characteristics are reported by the
    // sources themselves.
    let mut universe = Universe::new();
    let sites: [(&str, Vec<&str>, u64, f64); 6] = [
        (
            "alpha-books.com",
            vec!["title", "author", "isbn"],
            120_000,
            140.0,
        ),
        (
            "beta-books.com",
            vec!["title", "author", "keyword"],
            90_000,
            90.0,
        ),
        (
            "gamma-reads.net",
            vec!["title", "author", "price"],
            200_000,
            60.0,
        ),
        ("delta-pages.org", vec!["keyword", "subject"], 40_000, 120.0),
        (
            "epsilon-shop.com",
            vec!["title", "price", "format"],
            150_000,
            100.0,
        ),
        (
            "zeta-aggregator.io",
            vec!["voltage", "turbine"],
            500_000,
            30.0,
        ),
    ];
    for (site, attrs, tuples, mttf) in sites {
        universe
            .add_source(
                SourceBuilder::new(site)
                    .attributes(attrs)
                    .cardinality(tuples)
                    .characteristic("mttf", mttf),
            )
            .expect("well-formed source");
    }

    // Each cooperating source computes a PCSA signature of its tuples. Here
    // we synthesize overlapping tuple sets to make coverage/redundancy
    // meaningful: every site carries a slice of a shared catalog.
    let hasher = TupleHasher::default();
    let sketches: Vec<Option<PcsaSketch>> = universe
        .sources()
        .iter()
        .enumerate()
        .map(|(i, s)| {
            let mut sketch = PcsaSketch::new(256, hasher);
            let start = (i as u64) * 30_000;
            for t in start..start + s.cardinality() / 10 {
                sketch.insert_u64(t % 400_000);
            }
            Some(sketch)
        })
        .collect();

    // Build the engine and describe what "good" means: schema coherence
    // matters most, then data volume and freshness from reliable sites.
    let mube = MubeBuilder::new(&universe).sketches(sketches).build();
    let spec = ProblemSpec::new(4)
        .with_weights(
            Weights::new([
                ("matching", 0.4),
                ("cardinality", 0.2),
                ("coverage", 0.2),
                ("redundancy", 0.1),
                ("mttf", 0.1),
            ])
            .expect("weights sum to 1"),
        )
        .with_theta(0.75);

    let solution = mube.solve_default(&spec, 42).expect("solvable");

    println!("µBE chose the following data integration system:\n");
    println!("{solution}");
    println!("selected sites:");
    for id in &solution.selected {
        let s = universe.expect_source(*id);
        println!(
            "  {} ({} tuples, mttf {:.0} days)",
            s.name(),
            s.cardinality(),
            s.characteristic("mttf").unwrap_or(0.0)
        );
    }
    println!("\nmediated schema attributes (GAs):");
    for ga in solution.schema.gas() {
        let names: Vec<String> = ga
            .attrs()
            .map(|a| {
                format!(
                    "{}.{}",
                    universe.expect_source(a.source).name(),
                    universe.attr_name(a).unwrap_or("?")
                )
            })
            .collect();
        println!("  {{{}}}", names.join(", "));
    }

    // The mapping is the third piece of the data integration system: use it
    // to translate a mediated-schema query into per-source queries.
    let mapping = solution.mapping(&universe);
    println!(
        "\nquery translation (asking for all {} mediated attributes):",
        mapping.num_gas()
    );
    let all_gas: Vec<usize> = (0..mapping.num_gas()).collect();
    for source_query in mapping.translate(&all_gas) {
        let parts: Vec<String> = source_query
            .attrs
            .iter()
            .map(|(k, a)| format!("g{k} <- {}", universe.attr_name(*a).unwrap_or("?")))
            .collect();
        println!(
            "  ask {}: {}",
            universe.expect_source(source_query.source).name(),
            parts.join(", ")
        );
    }
    println!(
        "\nmapping covers {:.0}% of the selected sources' attributes.",
        mapping.coverage() * 100.0
    );
}
