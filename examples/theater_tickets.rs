//! The paper's motivating scenario (Figure 1): theater-ticket sources
//! discovered through a hidden-Web search engine, with the exact schemas
//! the paper lists from CompletePlanet.com.
//!
//! Demonstrates the two-problem interplay: which of the discovered sources
//! to integrate, and what mediated schema emerges — then how a GA
//! constraint ("keyword" and "search for" mean the same thing) changes the
//! answer.
//!
//! Run with: `cargo run --example theater_tickets`

use mube::prelude::*;

fn main() {
    // Figure 1 of the paper, verbatim.
    let figure1: [(&str, Vec<&str>); 11] = [
        ("tonyawards.com", vec!["keywords"]),
        ("whatsonstage.com", vec!["your town"]),
        ("aceticket.com", vec!["state", "city", "event", "venue"]),
        ("canadiantheatre.com", vec!["phrase", "search term"]),
        ("londontheatre.co.uk", vec!["type", "keyword"]),
        ("mime.info.com", vec!["search for"]),
        (
            "pbs.org",
            vec![
                "program title",
                "date",
                "author",
                "actor",
                "director",
                "keyword",
            ],
        ),
        ("pa.msu.edu", vec!["keyword"]),
        (
            "wstonline.org",
            vec!["keyword", "after date", "before date"],
        ),
        (
            "officiallondontheatre.co.uk",
            vec!["keyword", "after date", "before date"],
        ),
        (
            "lastminute.com",
            vec!["event name", "event type", "location", "date", "radius"],
        ),
    ];

    let mut universe = Universe::new();
    for (i, (site, attrs)) in figure1.iter().enumerate() {
        universe
            .add_source(
                SourceBuilder::new(*site)
                    .attributes(attrs.iter().copied())
                    // Synthetic volumes/latencies: ticket aggregators are big,
                    // niche sites small.
                    .cardinality(5_000 + 20_000 * (i as u64 % 4))
                    .characteristic("mttf", 60.0 + 15.0 * (i as f64 % 5.0)),
            )
            .expect("well-formed source");
    }

    let mube = MubeBuilder::new(&universe).build();

    // Iteration 1: pure schema coherence, pick 5 of the 11 sources.
    let spec = ProblemSpec::new(5)
        .with_weights(
            Weights::new([("matching", 0.7), ("cardinality", 0.15), ("mttf", 0.15)]).unwrap(),
        )
        .with_theta(0.7);
    let mut session = Session::new(&mube, spec).with_seed(7);
    let first = session.iterate().expect("iteration 1 solves");
    println!("=== iteration 1: no constraints ===");
    print_solution(&universe, first);

    // The user inspects the output: the keyword-search sites clustered, but
    // mime.info.com's "search for" box was not recognized as the same
    // concept as "keyword". Provide a bridging GA constraint — µBE's
    // "matching by example".
    let keyword_attr = universe
        .all_attrs()
        .find(|a| universe.attr_name(*a) == Some("keyword"))
        .expect("keyword attr exists");
    let search_for_attr = universe
        .all_attrs()
        .find(|a| universe.attr_name(*a) == Some("search for"))
        .expect("search for attr exists");
    let bridge = GlobalAttribute::new([keyword_attr, search_for_attr]).unwrap();
    println!("\nuser bridges: {bridge}  (keyword == search for)\n");
    session.adopt_ga(bridge);

    let second = session.iterate().expect("iteration 2 solves");
    println!("=== iteration 2: with the bridging GA constraint ===");
    print_solution(&universe, second);
}

fn print_solution(universe: &Universe, solution: &Solution) {
    println!(
        "Q = {:.4}; {} sources; {} GAs; solved in {:?} ({} Match calls)",
        solution.overall_quality,
        solution.num_sources(),
        solution.schema.len(),
        solution.stats.elapsed,
        solution.stats.match_calls
    );
    for id in &solution.selected {
        println!("  + {}", universe.expect_source(*id).name());
    }
    for ga in solution.schema.gas() {
        let names: Vec<String> = ga
            .attrs()
            .map(|a| {
                format!(
                    "{}:{}",
                    universe.expect_source(a.source).name(),
                    universe.attr_name(a).unwrap_or("?")
                )
            })
            .collect();
        println!("  GA {{{}}}", names.join(" | "));
    }
    println!();
}
